//! The assembled [`Session`]: owns the wired pipeline and drives SPMD
//! execution through per-rank [`RankHandle`]s over a pluggable
//! communication backend.

use std::path::Path;
use std::sync::Arc;

use cgnn_comm::{Backend, FaultInjector, FaultPlan};
use cgnn_core::{ConsistentGnn, EpochReport, GnnConfig, Trainer};
use cgnn_graph::{build_distributed_graph, build_global_graph, LocalGraph};
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_partition::{Partition, PartitionStrategy};
use cgnn_tensor::{AdamState, ParamSet};

use crate::builder::{ExchangeSpec, SessionBuilder, SessionError};
use crate::checkpoint::CheckpointPolicy;
use crate::dataset::Dataset;
use crate::handle::{RankDataset, RankHandle};

/// A fully wired pipeline instance: mesh, partition, per-rank graphs, and
/// the recipe (exchange strategy, model config, seed, learning rate) for
/// constructing each rank's trainer. Cheap to clone-per-run: the expensive
/// graph construction happened once in [`SessionBuilder::build`].
///
/// [`Session::run`] launches one rank per sub-graph on the configured
/// [`Backend`] (the thread world by default; the serial single-stepping
/// world for deterministic debugging), hands each a [`RankHandle`], and
/// returns the per-rank results in rank order. Repeated `run` calls reuse
/// the same graphs but build fresh trainers, so every run starts from the
/// same seeded state — or, for a session produced by [`Session::restore`],
/// from a saved checkpoint — which is what makes builder sessions
/// reproduce hand-wired loss trajectories bit for bit.
pub struct Session {
    mesh: Arc<BoxMesh>,
    partition: Option<Partition>,
    graphs: Vec<Arc<LocalGraph>>,
    /// The decomposition rule the partition came from, kept so the
    /// session can re-partition for a different world size
    /// ([`Session::resized`], the elastic recovery path).
    strategy: Arc<dyn PartitionStrategy>,
    exchange: ExchangeSpec,
    backend: Backend,
    config: GnnConfig,
    seed: u64,
    lr: f64,
    /// Checkpoint each run's trainers start from instead of seeded init
    /// (set by [`Session::restore`]; validated eagerly at restore time).
    checkpoint: Option<Arc<(ParamSet, AdamState)>>,
    /// The snapshot-stream training set epoch methods run over, if
    /// configured.
    dataset: Option<Arc<Dataset>>,
    /// Opt-in every-k-step checkpoint schedule applied during epoch
    /// training.
    ckpt_policy: Option<CheckpointPolicy>,
    /// Armed fault-injection script, wrapped around every rank's
    /// transport on each run (chaos testing; `None` costs nothing).
    fault_plan: Option<FaultPlan>,
    /// Which recovery attempt this session is: selects the armed faults
    /// of the plan (0 = initial world; bumped by the elastic loop).
    pub(crate) attempt: u32,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("ranks", &self.ranks())
            .field("elements", &self.mesh.num_elements())
            .field("exchange", &self.exchange.label())
            .field("backend", &self.backend.label())
            .field("hidden", &self.config.hidden)
            .field("seed", &self.seed)
            .field("lr", &self.lr)
            .field("restored", &self.checkpoint.is_some())
            .field("strategy", &self.strategy.label())
            .field("attempt", &self.attempt)
            .finish()
    }
}

impl Session {
    /// Entry point: a default-configured [`SessionBuilder`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assembled(
        mesh: Arc<BoxMesh>,
        partition: Option<Partition>,
        graphs: Vec<Arc<LocalGraph>>,
        strategy: Arc<dyn PartitionStrategy>,
        exchange: ExchangeSpec,
        backend: Backend,
        config: GnnConfig,
        seed: u64,
        lr: f64,
        dataset: Option<Arc<Dataset>>,
        ckpt_policy: Option<CheckpointPolicy>,
        fault_plan: Option<FaultPlan>,
    ) -> Self {
        Session {
            mesh,
            partition,
            graphs,
            strategy,
            exchange,
            backend,
            config,
            seed,
            lr,
            checkpoint: None,
            dataset,
            ckpt_policy,
            fault_plan,
            attempt: 0,
        }
    }

    /// Number of SPMD ranks this session drives.
    pub fn ranks(&self) -> usize {
        self.graphs.len()
    }

    /// The mesh everything was derived from.
    pub fn mesh(&self) -> &Arc<BoxMesh> {
        &self.mesh
    }

    /// The element decomposition (`None` for un-partitioned R = 1).
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Rank `rank`'s reduced distributed graph.
    pub fn graph(&self, rank: usize) -> &Arc<LocalGraph> {
        &self.graphs[rank]
    }

    /// All per-rank graphs, in rank order.
    pub fn graphs(&self) -> &[Arc<LocalGraph>] {
        &self.graphs
    }

    /// The model configuration each rank trains.
    pub fn config(&self) -> GnnConfig {
        self.config
    }

    /// Display label of the configured halo exchange.
    pub fn exchange_label(&self) -> &'static str {
        self.exchange.label()
    }

    /// The communication transport this session launches ranks on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured snapshot-stream training set, if any.
    pub fn dataset(&self) -> Option<&Arc<Dataset>> {
        self.dataset.as_ref()
    }

    /// The configured periodic-checkpoint schedule, if any.
    pub fn checkpoint_policy(&self) -> Option<&CheckpointPolicy> {
        self.ckpt_policy.as_ref()
    }

    /// The decomposition strategy this session re-partitions with.
    pub fn partition_strategy(&self) -> &Arc<dyn PartitionStrategy> {
        &self.strategy
    }

    /// The armed fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Which recovery attempt this session is (0 = initial world; bumped
    /// by [`Session::train_epochs_elastic`] after each recovery). Selects
    /// the armed faults of an attached [`FaultPlan`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// A sibling session differing only in its exchange strategy. The
    /// expensive state (mesh, partition, per-rank graphs) is shared, not
    /// rebuilt — this is how mode-comparison sweeps (Fig. 6, traffic
    /// tables) price several strategies against one wiring.
    pub fn with_exchange(&self, mode: cgnn_core::HaloExchangeMode) -> Session {
        Session {
            exchange: ExchangeSpec::Mode(mode),
            ..self.shallow_clone()
        }
    }

    /// A sibling session differing only in its communication backend —
    /// training trajectories are bit-identical across backends, so this
    /// swaps scheduling (e.g. onto the deterministic serial world) without
    /// touching arithmetic or wiring.
    pub fn with_backend(&self, backend: Backend) -> Session {
        Session {
            backend,
            ..self.shallow_clone()
        }
    }

    /// A sibling session whose runs resume from the training checkpoint at
    /// `path` (written by [`RankHandle::save_params`]) instead of seeded
    /// initialization. The checkpoint's architecture is validated against
    /// this session's model configuration *now*, so mismatches surface as
    /// an error here rather than a panic inside the SPMD region. A resumed
    /// run continues **bit-identically** to the uninterrupted one.
    pub fn restore(&self, path: impl AsRef<Path>) -> std::io::Result<Session> {
        let (params, opt) = cgnn_tensor::load_checkpoint(path)?;
        // Probe restore into a freshly seeded replica of this session's
        // architecture: verifies parameter names/shapes and optimizer
        // moment shapes without touching state.
        let (mut probe, _) = ConsistentGnn::seeded(self.config, self.seed);
        cgnn_tensor::restore_into(&mut probe, &params)?;
        opt.validate_for(&probe)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(Session {
            checkpoint: Some(Arc::new((params, opt))),
            ..self.shallow_clone()
        })
    }

    /// Cheap structural copy: shares mesh/partition/graphs, keeps the
    /// recipe (exchange, backend, config, seed, lr, dataset, checkpoints).
    pub(crate) fn shallow_clone(&self) -> Session {
        Session {
            mesh: Arc::clone(&self.mesh),
            partition: self.partition.clone(),
            graphs: self.graphs.clone(),
            strategy: Arc::clone(&self.strategy),
            exchange: self.exchange.clone(),
            backend: self.backend,
            config: self.config,
            seed: self.seed,
            lr: self.lr,
            checkpoint: self.checkpoint.clone(),
            dataset: self.dataset.clone(),
            ckpt_policy: self.ckpt_policy.clone(),
            fault_plan: self.fault_plan.clone(),
            attempt: self.attempt,
        }
    }

    /// A sibling session decomposed for a different world size: the mesh
    /// is re-partitioned with the session's stored
    /// [`PartitionStrategy`] and every rank's reduced graph is rebuilt;
    /// everything else (model recipe, seed, dataset, checkpoint policy,
    /// fault plan, restored state) carries over. This is the
    /// re-partitioning step of elastic recovery: after a rank dies, the
    /// survivors' new world is exactly `self.resized(survivors)`.
    ///
    /// Model parameters are partition-independent (replicas are
    /// bit-identical), so a restored checkpoint remains valid across a
    /// resize — only the data decomposition changes.
    pub fn resized(&self, ranks: usize) -> Result<Session, SessionError> {
        if ranks == 0 {
            return Err(SessionError::ZeroRanks);
        }
        if self.mesh.num_elements() < ranks {
            return Err(SessionError::TooManyRanks {
                ranks,
                elements: self.mesh.num_elements(),
            });
        }
        let (partition, graphs) = if ranks == 1 {
            (None, vec![Arc::new(build_global_graph(&self.mesh))])
        } else {
            let part = self.strategy.partition(&self.mesh, ranks);
            let graphs = build_distributed_graph(&self.mesh, &part)
                .into_iter()
                .map(Arc::new)
                .collect();
            (Some(part), graphs)
        };
        Ok(Session {
            partition,
            graphs,
            ..self.shallow_clone()
        })
    }

    /// Run `f` on every rank of the configured backend, returning the
    /// per-rank results in rank order. Each rank's [`RankHandle`] arrives
    /// with its graph, halo context, and trainer already wired — freshly
    /// seeded, or restored from the checkpoint for sessions produced by
    /// [`Session::restore`].
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut RankHandle) -> T + Sync,
    {
        let spmd = |comm: &cgnn_comm::Comm| {
            let graph = Arc::clone(&self.graphs[comm.rank()]);
            let ctx = self.exchange.context(comm, &graph);
            let mut trainer = Trainer::new(self.config, self.seed, self.lr, ctx);
            if let Some(ckpt) = &self.checkpoint {
                trainer
                    .restore(&ckpt.0, &ckpt.1)
                    .expect("checkpoint validated in Session::restore");
            }
            let dataset = self.dataset.as_ref().map(|ds| {
                Arc::new(RankDataset {
                    samples: ds.rank_samples(&graph),
                    schedule: ds.schedule(self.seed),
                })
            });
            let mut handle = RankHandle::new(
                comm.clone(),
                graph,
                trainer,
                self.exchange.label(),
                dataset,
                self.ckpt_policy.clone(),
            );
            f(&mut handle)
        };
        match &self.fault_plan {
            Some(plan) => self.backend.launch_with(
                self.ranks(),
                spmd,
                FaultInjector::decorator(plan.clone(), self.attempt),
            ),
            None => self.backend.launch(self.ranks(), spmd),
        }
    }

    /// Convenience: train every rank on the Taylor-Green autoencoding task
    /// (the paper's demonstration protocol) and return the per-rank loss
    /// histories. With a consistent exchange all histories are identical.
    pub fn train_autoencode(
        &self,
        field: &TaylorGreen,
        t: f64,
        iterations: usize,
    ) -> Vec<Vec<f64>> {
        self.run(|h| {
            let data = h.autoencode_data(field, t);
            h.train(&data, iterations)
        })
    }

    /// Convenience: evaluate the consistent loss of the freshly seeded
    /// (untrained) model on the autoencoding task — the quantity swept in
    /// the paper's Fig. 6 (left). Identical on every rank; rank 0's value
    /// is returned.
    pub fn initial_loss(&self, field: &TaylorGreen, t: f64) -> f64 {
        self.run(|h| {
            let data = h.autoencode_data(field, t);
            h.eval_loss(&data)
        })[0]
    }

    /// Convenience: run [`RankHandle::train_epochs`] on every rank over
    /// the configured dataset and return the per-rank epoch reports (in
    /// rank order; with a consistent exchange all ranks report identical
    /// losses). Applies the periodic-checkpoint policy if one was
    /// configured.
    ///
    /// # Panics
    /// If the session has no dataset (`SessionBuilder::dataset`).
    pub fn train_epochs(&self, epochs: u64) -> Vec<Vec<EpochReport>> {
        self.run(|h| h.train_epochs(epochs))
    }

    /// Convenience: mean consistent loss of the current (seeded or
    /// restored) parameters over the whole dataset, evaluated distributed
    /// and identical on every rank; rank 0's value is returned.
    ///
    /// # Panics
    /// If the session has no dataset (`SessionBuilder::dataset`).
    pub fn eval_dataset(&self) -> f64 {
        self.run(|h| h.eval_dataset())[0]
    }

    /// Convenience: distributed inference on dataset sample `i` — every
    /// rank runs [`RankHandle::predict`] on its shard of the sample and
    /// the per-rank prediction matrices are returned in rank order.
    ///
    /// # Panics
    /// If the session has no dataset (`SessionBuilder::dataset`) or `i`
    /// is out of range.
    pub fn predict(&self, i: usize) -> Vec<cgnn_tensor::Tensor> {
        self.run(|h| h.predict(h.dataset_sample(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SessionError;
    use cgnn_core::HaloExchangeMode;
    use cgnn_partition::Strategy;

    fn mesh() -> BoxMesh {
        BoxMesh::tgv_cube(2, 2)
    }

    #[test]
    fn builder_validates_inputs() {
        assert_eq!(
            Session::builder().build().unwrap_err(),
            SessionError::MissingMesh
        );
        assert_eq!(
            Session::builder()
                .mesh(mesh())
                .ranks(0)
                .build()
                .unwrap_err(),
            SessionError::ZeroRanks
        );
        assert_eq!(
            Session::builder()
                .mesh(mesh())
                .ranks(99)
                .build()
                .unwrap_err(),
            SessionError::TooManyRanks {
                ranks: 99,
                elements: 8
            }
        );
    }

    #[test]
    fn single_rank_session_covers_global_graph() {
        let s = Session::builder().mesh(mesh()).build().unwrap();
        assert_eq!(s.ranks(), 1);
        assert!(s.partition().is_none());
        assert_eq!(s.graph(0).n_local(), s.mesh().num_global_nodes());
    }

    #[test]
    fn distributed_session_trains_in_lockstep() {
        let s = Session::builder()
            .mesh(mesh())
            .ranks(2)
            .partition(Strategy::Slab)
            .exchange(HaloExchangeMode::NeighborAllToAll)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(s.exchange_label(), "N-A2A");
        let field = TaylorGreen::new(0.01);
        let histories = s.train_autoencode(&field, 0.0, 5);
        assert_eq!(histories.len(), 2);
        assert_eq!(histories[0], histories[1], "replicas diverged");
        assert!(histories[0][4] < histories[0][0], "loss did not drop");
    }

    #[test]
    fn session_predict_matches_batched_handle_predict() {
        let field = TaylorGreen::new(0.01);
        let times = [0.0, 0.1, 0.2];
        let s = Session::builder()
            .mesh(mesh())
            .seed(5)
            .dataset(Dataset::tgv_autoencode(&mesh(), &field, &times))
            .build()
            .unwrap();
        // Session-level convenience, one sample at a time...
        let singles: Vec<_> = (0..times.len()).map(|i| s.predict(i)[0].clone()).collect();
        // ...must be bit-identical to one stacked micro-batch per rank.
        let stacked = s.run(|h| {
            let refs: Vec<_> = (0..times.len()).map(|i| h.dataset_sample(i)).collect();
            h.predict_batch(&refs)
        });
        for (i, single) in singles.iter().enumerate() {
            assert_eq!(
                single.data(),
                stacked[0][i].data(),
                "sample {i} diverged between singleton and batched predict"
            );
        }
    }

    #[test]
    fn repeated_runs_restart_from_the_same_seed() {
        let s = Session::builder().mesh(mesh()).seed(3).build().unwrap();
        let field = TaylorGreen::new(0.01);
        let a = s.train_autoencode(&field, 0.0, 4);
        let b = s.train_autoencode(&field, 0.0, 4);
        assert_eq!(a, b, "runs must be independent and reproducible");
    }

    #[test]
    fn with_backend_swaps_transport_without_changing_results() {
        let s = Session::builder()
            .mesh(mesh())
            .ranks(2)
            .partition(Strategy::Slab)
            .seed(11)
            .backend(cgnn_comm::Backend::Threads)
            .build()
            .unwrap();
        assert_eq!(s.backend(), cgnn_comm::Backend::Threads);
        let serial = s.with_backend(cgnn_comm::Backend::Serial);
        assert_eq!(serial.backend(), cgnn_comm::Backend::Serial);
        let field = TaylorGreen::new(0.01);
        let a = s.train_autoencode(&field, 0.0, 4);
        let b = serial.train_autoencode(&field, 0.0, 4);
        assert_eq!(a, b, "transports must be arithmetically identical");
        let labels = serial.run(|h| h.comm().backend_label());
        assert_eq!(labels, vec!["serial"; 2]);
    }

    #[test]
    fn restore_rejects_mismatched_architecture() {
        let dir = std::env::temp_dir().join(format!("cgnn_restore_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("small.ckpt");
        let small = Session::builder().mesh(mesh()).seed(1).build().unwrap();
        small.run(|h| {
            if h.rank() == 0 {
                h.save_params(&path).expect("save");
            }
        });
        // Same mesh, larger model: must be refused eagerly.
        let large = Session::builder()
            .mesh(mesh())
            .model(GnnConfig::large())
            .build()
            .unwrap();
        assert!(large.restore(&path).is_err());
        assert!(small.restore(&path).is_ok());

        // Matching params but malformed optimizer moments (assembled via
        // the public checkpoint API) must also be refused eagerly, not
        // panic inside the SPMD region on the first step.
        let (params, _) = cgnn_core::ConsistentGnn::seeded(small.config(), 1);
        let bad_opt = cgnn_tensor::AdamState {
            t: 3,
            m: vec![cgnn_tensor::Tensor::zeros(1, 1)],
            v: vec![cgnn_tensor::Tensor::zeros(1, 1)],
        };
        let bad_path = dir.join("bad_moments.ckpt");
        cgnn_tensor::save_checkpoint(&params, &bad_opt, &bad_path).expect("save");
        assert!(small.restore(&bad_path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handles_expose_traffic_stats() {
        let s = Session::builder()
            .mesh(mesh())
            .ranks(2)
            .exchange(HaloExchangeMode::Coalesced)
            .build()
            .unwrap();
        let field = TaylorGreen::new(0.01);
        let stats = s.run(|h| {
            let data = h.autoencode_data(&field, 0.0);
            h.traffic_reset();
            h.step(&data);
            h.traffic()
        });
        // 4 MP layers, forward + backward, one fused collective each.
        assert_eq!(stats[0].all_gathers, 8);
        assert!(stats[0].all_gather_bytes > 0);
    }
}
