//! Per-rank driving handle passed to [`Session::run`](crate::Session::run)
//! closures.

use std::sync::Arc;

use cgnn_comm::{Comm, StatsSnapshot};
use cgnn_core::{EpochReport, EpochSchedule, RankData, Trainer};
use cgnn_graph::LocalGraph;
use cgnn_mesh::TaylorGreen;
use cgnn_tensor::Tensor;

use crate::checkpoint::CheckpointPolicy;

/// One rank's materialized slice of the session dataset: every sample as
/// ready-to-train [`RankData`], plus the deterministic batching schedule
/// (identical on all ranks).
pub(crate) struct RankDataset {
    pub(crate) samples: Vec<RankData>,
    pub(crate) schedule: EpochSchedule,
}

/// One rank's view of a running session: its communicator, its reduced
/// distributed graph, and a trainer wired to the session's halo exchange.
/// Everything the hand-written SPMD closures used to assemble per rank.
pub struct RankHandle {
    comm: Comm,
    graph: Arc<LocalGraph>,
    trainer: Trainer,
    label: &'static str,
    dataset: Option<Arc<RankDataset>>,
    ckpt_policy: Option<CheckpointPolicy>,
}

impl RankHandle {
    pub(crate) fn new(
        comm: Comm,
        graph: Arc<LocalGraph>,
        trainer: Trainer,
        label: &'static str,
        dataset: Option<Arc<RankDataset>>,
        ckpt_policy: Option<CheckpointPolicy>,
    ) -> Self {
        RankHandle {
            comm,
            graph,
            trainer,
            label,
            dataset,
            ckpt_policy,
        }
    }

    /// This rank's materialized dataset, or a panic pointing at the
    /// builder method that configures one.
    fn dataset(&self) -> Arc<RankDataset> {
        Arc::clone(self.dataset.as_ref().expect(
            "this session has no dataset: configure one with \
             Session::builder().dataset(..)",
        ))
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The underlying communicator (for custom collectives).
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// This rank's reduced distributed graph.
    pub fn graph(&self) -> &Arc<LocalGraph> {
        &self.graph
    }

    /// Borrow the trainer (model, parameters, optimizer, halo context).
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Mutably borrow the trainer for custom training schedules.
    pub fn trainer_mut(&mut self) -> &mut Trainer {
        &mut self.trainer
    }

    /// Display label of this session's halo exchange, matching
    /// [`Session::exchange_label`](crate::Session::exchange_label) (for a
    /// custom strategy this is the builder's label; the strategy object's
    /// own label stays reachable via `trainer().ctx.label()`).
    pub fn exchange_label(&self) -> &'static str {
        self.label
    }

    /// Build rank-local training data from raw node-feature and target
    /// buffers (both `n_local * NODE_FEATS`, row-major).
    pub fn data(&self, x: Vec<f64>, target: Vec<f64>) -> RankData {
        RankData::new(Arc::clone(&self.graph), x, target)
    }

    /// The paper's demonstration task: autoencode the Taylor-Green velocity
    /// field at time `t`.
    pub fn autoencode_data(&self, field: &TaylorGreen, t: f64) -> RankData {
        RankData::tgv_autoencode(Arc::clone(&self.graph), field, t)
    }

    /// Forecasting task: predict the velocity at `t1` from the field at
    /// `t0`.
    pub fn forecast_data(&self, field: &TaylorGreen, t0: f64, t1: f64) -> RankData {
        RankData::tgv_forecast(Arc::clone(&self.graph), field, t0, t1)
    }

    /// One training iteration (forward, backward, DDP reduce, Adam step).
    /// Collective. Returns the pre-update loss.
    pub fn step(&mut self, data: &RankData) -> f64 {
        self.trainer.step(data)
    }

    /// Run `iterations` training steps, returning the loss history.
    /// Collective.
    pub fn train(&mut self, data: &RankData, iterations: usize) -> Vec<f64> {
        self.trainer.train(data, iterations)
    }

    /// Train over the session dataset until `epochs` epochs are complete,
    /// returning one [`EpochReport`] per epoch actually run. Collective.
    ///
    /// The loop is *resume-aware*: the starting position is derived from
    /// the trainer's optimizer step count, so a session restored from a
    /// mid-run checkpoint (periodic or manual) continues with exactly the
    /// remaining batches — the shuffled order is recomputed from `(seed,
    /// epoch)` alone — and the combined trajectory is bit-identical to the
    /// uninterrupted run. A trainer already at or past `epochs` returns an
    /// empty report list.
    ///
    /// If the session configured a [`CheckpointPolicy`], rank 0 writes a
    /// checkpoint every `every_steps` optimizer steps and prunes old files
    /// beyond the retention count.
    ///
    /// # Panics
    /// If the session has no dataset, or a periodic checkpoint write
    /// fails.
    pub fn train_epochs(&mut self, epochs: u64) -> Vec<EpochReport> {
        let ds = self.dataset();
        let spe = ds.schedule.steps_per_epoch();
        let policy = if self.rank() == 0 {
            self.ckpt_policy.clone()
        } else {
            None
        };
        let mut reports = Vec::new();
        while self.trainer.steps_taken() < epochs * spe {
            let (epoch, _) = ds.schedule.position(self.trainer.steps_taken());
            let report =
                self.trainer
                    .train_epoch_with(&ds.samples, &ds.schedule, epoch, |trainer, step| {
                        if let Some(p) = &policy {
                            if p.is_due(step) {
                                p.save_step(trainer, step).expect("periodic checkpoint");
                            }
                        }
                    });
            reports.push(report);
        }
        reports
    }

    /// Mean consistent loss of the current parameters over every dataset
    /// sample, in canonical (unshuffled) order. Identical on every rank.
    /// Collective.
    ///
    /// # Panics
    /// If the session has no dataset.
    pub fn eval_dataset(&self) -> f64 {
        let ds = self.dataset();
        self.trainer.eval_mean_loss(&ds.samples)
    }

    /// Number of samples in the session dataset (`None` when the session
    /// has no dataset).
    pub fn dataset_len(&self) -> Option<usize> {
        self.dataset.as_ref().map(|ds| ds.samples.len())
    }

    /// The deterministic batching schedule of the session dataset (`None`
    /// when the session has no dataset). Identical on every rank.
    pub fn dataset_schedule(&self) -> Option<EpochSchedule> {
        self.dataset.as_ref().map(|ds| ds.schedule)
    }

    /// Borrow one materialized dataset sample for custom evaluation or
    /// rollout schedules.
    ///
    /// # Panics
    /// If the session has no dataset or `i` is out of range.
    pub fn dataset_sample(&self, i: usize) -> &RankData {
        let ds = self.dataset.as_ref().expect(
            "this session has no dataset: configure one with \
             Session::builder().dataset(..)",
        );
        &ds.samples[i]
    }

    /// Consistent loss of the current parameters, no update. Collective.
    pub fn eval_loss(&self, data: &RankData) -> f64 {
        self.trainer.eval_loss(data)
    }

    /// Inference: forward pass returning the prediction matrix. Collective
    /// when the exchange is consistent.
    pub fn predict(&self, data: &RankData) -> Tensor {
        self.trainer.predict(data)
    }

    /// Micro-batched inference: predictions for every sample of `batch`,
    /// bit-identical to calling [`RankHandle::predict`] on each sample in
    /// turn. On single-rank identity-exchange graphs the samples are
    /// stacked into one forward pass over a disjoint-union graph (the
    /// `cgnn-serve` data-plane amortization); otherwise this falls back to
    /// per-sample passes. Collective when the exchange is consistent.
    ///
    /// # Panics
    /// If `batch` is empty or its samples reference different graphs.
    pub fn predict_batch(&self, batch: &[&RankData]) -> Vec<Tensor> {
        self.trainer.predict_batch(batch)
    }

    /// Autoregressive rollout of `steps` model applications.
    pub fn rollout(&self, data: &RankData, steps: usize) -> Vec<Tensor> {
        self.trainer.rollout(data, steps)
    }

    /// Sum-all-reduce a scalar across ranks. Collective.
    pub fn all_reduce_scalar(&self, v: f64) -> f64 {
        self.comm.all_reduce_scalar(v)
    }

    /// Checkpoint this rank's model parameters **and** optimizer state to
    /// `path` (restored with [`Session::restore`](crate::Session::restore),
    /// after which training resumes bit-identically). Replicas are
    /// bit-identical across ranks, so one rank saving — conventionally
    /// rank 0 — is a complete checkpoint of the distributed run.
    /// Non-collective.
    pub fn save_params(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        cgnn_tensor::save_checkpoint(&self.trainer.params, &self.trainer.opt.state(), path)
    }

    /// Snapshot this rank's communication traffic counters.
    pub fn traffic(&self) -> StatsSnapshot {
        self.comm.stats_snapshot()
    }

    /// Reset this rank's communication traffic counters.
    pub fn traffic_reset(&self) {
        self.comm.stats_reset()
    }
}
