//! Per-rank driving handle passed to [`Session::run`](crate::Session::run)
//! closures.

use std::sync::Arc;

use cgnn_comm::{Comm, StatsSnapshot};
use cgnn_core::{RankData, Trainer};
use cgnn_graph::LocalGraph;
use cgnn_mesh::TaylorGreen;
use cgnn_tensor::Tensor;

/// One rank's view of a running session: its communicator, its reduced
/// distributed graph, and a trainer wired to the session's halo exchange.
/// Everything the hand-written SPMD closures used to assemble per rank.
pub struct RankHandle {
    comm: Comm,
    graph: Arc<LocalGraph>,
    trainer: Trainer,
    label: &'static str,
}

impl RankHandle {
    pub(crate) fn new(
        comm: Comm,
        graph: Arc<LocalGraph>,
        trainer: Trainer,
        label: &'static str,
    ) -> Self {
        RankHandle {
            comm,
            graph,
            trainer,
            label,
        }
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The underlying communicator (for custom collectives).
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// This rank's reduced distributed graph.
    pub fn graph(&self) -> &Arc<LocalGraph> {
        &self.graph
    }

    /// Borrow the trainer (model, parameters, optimizer, halo context).
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Mutably borrow the trainer for custom training schedules.
    pub fn trainer_mut(&mut self) -> &mut Trainer {
        &mut self.trainer
    }

    /// Display label of this session's halo exchange, matching
    /// [`Session::exchange_label`](crate::Session::exchange_label) (for a
    /// custom strategy this is the builder's label; the strategy object's
    /// own label stays reachable via `trainer().ctx.label()`).
    pub fn exchange_label(&self) -> &'static str {
        self.label
    }

    /// Build rank-local training data from raw node-feature and target
    /// buffers (both `n_local * NODE_FEATS`, row-major).
    pub fn data(&self, x: Vec<f64>, target: Vec<f64>) -> RankData {
        RankData::new(Arc::clone(&self.graph), x, target)
    }

    /// The paper's demonstration task: autoencode the Taylor-Green velocity
    /// field at time `t`.
    pub fn autoencode_data(&self, field: &TaylorGreen, t: f64) -> RankData {
        RankData::tgv_autoencode(Arc::clone(&self.graph), field, t)
    }

    /// Forecasting task: predict the velocity at `t1` from the field at
    /// `t0`.
    pub fn forecast_data(&self, field: &TaylorGreen, t0: f64, t1: f64) -> RankData {
        RankData::tgv_forecast(Arc::clone(&self.graph), field, t0, t1)
    }

    /// One training iteration (forward, backward, DDP reduce, Adam step).
    /// Collective. Returns the pre-update loss.
    pub fn step(&mut self, data: &RankData) -> f64 {
        self.trainer.step(data)
    }

    /// Run `iterations` training steps, returning the loss history.
    /// Collective.
    pub fn train(&mut self, data: &RankData, iterations: usize) -> Vec<f64> {
        self.trainer.train(data, iterations)
    }

    /// Consistent loss of the current parameters, no update. Collective.
    pub fn eval_loss(&self, data: &RankData) -> f64 {
        self.trainer.eval_loss(data)
    }

    /// Inference: forward pass returning the prediction matrix. Collective
    /// when the exchange is consistent.
    pub fn predict(&self, data: &RankData) -> Tensor {
        self.trainer.predict(data)
    }

    /// Autoregressive rollout of `steps` model applications.
    pub fn rollout(&self, data: &RankData, steps: usize) -> Vec<Tensor> {
        self.trainer.rollout(data, steps)
    }

    /// Sum-all-reduce a scalar across ranks. Collective.
    pub fn all_reduce_scalar(&self, v: f64) -> f64 {
        self.comm.all_reduce_scalar(v)
    }

    /// Checkpoint this rank's model parameters **and** optimizer state to
    /// `path` (restored with [`Session::restore`](crate::Session::restore),
    /// after which training resumes bit-identically). Replicas are
    /// bit-identical across ranks, so one rank saving — conventionally
    /// rank 0 — is a complete checkpoint of the distributed run.
    /// Non-collective.
    pub fn save_params(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        cgnn_tensor::save_checkpoint(&self.trainer.params, &self.trainer.opt.state(), path)
    }

    /// Snapshot this rank's communication traffic counters.
    pub fn traffic(&self) -> StatsSnapshot {
        self.comm.stats_snapshot()
    }

    /// Reset this rank's communication traffic counters.
    pub fn traffic_reset(&self) {
        self.comm.stats_reset()
    }
}
