//! Snapshot-stream datasets: many `(input, target)` time pairs per
//! session, with deterministic seeded shuffling and mini-batch epochs.
//!
//! A [`Dataset`] owns **global** gid-major snapshot buffers (one
//! `n_nodes * 3` vector per side of each pair); the session slices them
//! into per-rank [`RankData`] when ranks launch, so
//! one dataset serves every rank count and partition strategy. Batch order
//! is governed by [`EpochSchedule`] — a pure function of `(seed, epoch)`
//! evaluated identically on every rank, which keeps distributed epoch
//! training bit-identical across backends and across checkpoint/restore
//! boundaries.

use std::sync::Arc;

use cgnn_core::{EpochSchedule, RankData};
use cgnn_graph::{LocalGraph, NODE_FEATS};
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_sem::SnapshotStream;

/// One global snapshot pair, gid-major. Buffers are shared so cloning a
/// dataset (e.g. through `Session` sibling constructors) is cheap.
#[derive(Clone)]
struct Sample {
    input: Arc<Vec<f64>>,
    target: Arc<Vec<f64>>,
}

/// A training set of SEM snapshot pairs plus its batching policy.
///
/// Construct from the solver ([`Dataset::from_stream`]), from hand-built
/// gid-major buffers ([`Dataset::from_pairs`]), or from the analytic
/// Taylor-Green field ([`Dataset::tgv_autoencode`] /
/// [`Dataset::tgv_forecast`]); then chain [`Dataset::batch_size`],
/// [`Dataset::sequential`], or [`Dataset::shuffle_seed`] and hand the
/// result to `Session::builder().dataset(..)`.
///
/// ```
/// use cgnn_mesh::{BoxMesh, TaylorGreen};
/// use cgnn_session::Dataset;
///
/// let mesh = BoxMesh::tgv_cube(2, 2);
/// let field = TaylorGreen::new(0.01);
/// let ds = Dataset::tgv_autoencode(&mesh, &field, &[0.0, 0.1, 0.2, 0.3]).batch_size(2);
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.steps_per_epoch(), 2);
/// ```
#[derive(Clone)]
pub struct Dataset {
    n_nodes: usize,
    samples: Vec<Sample>,
    batch_size: usize,
    shuffle: bool,
    shuffle_seed: Option<u64>,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("samples", &self.samples.len())
            .field("n_nodes", &self.n_nodes)
            .field("batch_size", &self.batch_size)
            .field("shuffle", &self.shuffle)
            .field("shuffle_seed", &self.shuffle_seed)
            .finish()
    }
}

impl Dataset {
    /// Wrap hand-built snapshot pairs: each buffer is gid-major
    /// `n_nodes * 3` (the three velocity components interleaved per global
    /// node id). Defaults: batch size 1, shuffling on, shuffle seed
    /// inherited from the session.
    ///
    /// # Panics
    /// If `pairs` is empty or any buffer has the wrong length.
    pub fn from_pairs(n_nodes: usize, pairs: Vec<(Vec<f64>, Vec<f64>)>) -> Self {
        assert!(!pairs.is_empty(), "a dataset needs at least one sample");
        let samples = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| {
                assert_eq!(x.len(), n_nodes * NODE_FEATS, "sample {i}: input length");
                assert_eq!(y.len(), n_nodes * NODE_FEATS, "sample {i}: target length");
                Sample {
                    input: Arc::new(x),
                    target: Arc::new(y),
                }
            })
            .collect();
        Dataset {
            n_nodes,
            samples,
            batch_size: 1,
            shuffle: true,
            shuffle_seed: None,
        }
    }

    /// Adopt a solver-generated [`SnapshotStream`] (the `cgnn-sem` datagen
    /// path: consecutive dumps of one continuous trajectory).
    pub fn from_stream(stream: SnapshotStream) -> Self {
        let n_nodes = stream.n_nodes();
        Self::from_pairs(n_nodes, stream.into_pairs())
    }

    /// Analytic multi-snapshot autoencoding set: sample `k` has the
    /// Taylor-Green velocity field at `times[k]` as both input and target
    /// (the paper's demonstration task, widened from one time to a stream).
    pub fn tgv_autoencode(mesh: &BoxMesh, field: &TaylorGreen, times: &[f64]) -> Self {
        Self::from_pairs(
            mesh.num_global_nodes(),
            times
                .iter()
                .map(|&t| {
                    let x = global_velocity(mesh, field, t);
                    (x.clone(), x)
                })
                .collect(),
        )
    }

    /// Analytic forecasting set: sample `k` maps the field at `times[k].0`
    /// to the field at `times[k].1`.
    pub fn tgv_forecast(mesh: &BoxMesh, field: &TaylorGreen, times: &[(f64, f64)]) -> Self {
        Self::from_pairs(
            mesh.num_global_nodes(),
            times
                .iter()
                .map(|&(t0, t1)| {
                    (
                        global_velocity(mesh, field, t0),
                        global_velocity(mesh, field, t1),
                    )
                })
                .collect(),
        )
    }

    /// Samples per optimizer step (default 1; the last batch of an epoch
    /// may be short).
    ///
    /// # Panics
    /// If `batch_size` is zero.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Disable per-epoch shuffling: every epoch visits the samples in
    /// insertion order.
    pub fn sequential(mut self) -> Self {
        self.shuffle = false;
        self
    }

    /// Use a dedicated shuffle seed instead of inheriting the session's
    /// seed — decouples batch order from parameter initialization.
    pub fn shuffle_seed(mut self, seed: u64) -> Self {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Number of snapshot pairs.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset holds no samples (constructors forbid this).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Unique global nodes each snapshot covers — must match the session
    /// mesh's `num_global_nodes` (validated by `SessionBuilder::build`).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Optimizer steps one epoch takes: `ceil(len / batch_size)`.
    pub fn steps_per_epoch(&self) -> u64 {
        (self.len() as u64).div_ceil(self.batch_size as u64)
    }

    /// The deterministic batching schedule this dataset induces;
    /// `session_seed` is used unless [`Dataset::shuffle_seed`] pinned one.
    pub fn schedule(&self, session_seed: u64) -> EpochSchedule {
        EpochSchedule::new(
            self.len(),
            self.batch_size,
            self.shuffle,
            self.shuffle_seed.unwrap_or(session_seed),
        )
    }

    /// Materialize every sample for one rank: slice the gid-major global
    /// buffers through the local graph's gid list and build index/edge
    /// structures. Called once per rank at launch.
    pub(crate) fn rank_samples(&self, graph: &Arc<LocalGraph>) -> Vec<RankData> {
        self.samples
            .iter()
            .map(|s| {
                RankData::new(
                    Arc::clone(graph),
                    extract(&s.input, graph),
                    extract(&s.target, graph),
                )
            })
            .collect()
    }
}

/// Gather one rank's `[n_local, 3]` row-major feature buffer out of a
/// gid-major global snapshot.
fn extract(global: &[f64], g: &LocalGraph) -> Vec<f64> {
    let mut out = Vec::with_capacity(g.n_local() * NODE_FEATS);
    for &gid in &g.gids {
        let base = gid as usize * NODE_FEATS;
        out.extend_from_slice(&global[base..base + NODE_FEATS]);
    }
    out
}

/// The Taylor-Green velocity field sampled at every global node, gid-major.
fn global_velocity(mesh: &BoxMesh, field: &TaylorGreen, t: f64) -> Vec<f64> {
    let n = mesh.num_global_nodes();
    let mut out = Vec::with_capacity(n * NODE_FEATS);
    for gid in 0..n as u64 {
        out.extend_from_slice(&field.velocity(mesh.node_pos(gid), t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_graph::{build_distributed_graph, build_global_graph};
    use cgnn_partition::{Partition, Strategy};

    #[test]
    fn tgv_autoencode_builds_matching_rank_data() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let field = TaylorGreen::new(0.01);
        let ds = Dataset::tgv_autoencode(&mesh, &field, &[0.0, 0.2]);
        assert_eq!(ds.len(), 2);
        let global = Arc::new(build_global_graph(&mesh));
        let samples = ds.rank_samples(&global);
        // Autoencoding: input == target, and it matches the analytic field.
        for (i, &gid) in global.gids.iter().enumerate() {
            let v = field.velocity(mesh.node_pos(gid), 0.2);
            for c in 0..3 {
                assert_eq!(samples[1].x.get(i, c), v[c]);
                assert_eq!(samples[1].target.get(i, c), v[c]);
            }
        }
    }

    #[test]
    fn rank_extraction_is_partition_consistent() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let field = TaylorGreen::new(0.01);
        let ds = Dataset::tgv_forecast(&mesh, &field, &[(0.0, 0.1)]);
        let global = Arc::new(build_global_graph(&mesh));
        let reference = ds.rank_samples(&global);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        for g in build_distributed_graph(&mesh, &part) {
            let g = Arc::new(g);
            let local = ds.rank_samples(&g);
            for (i, &gid) in g.gids.iter().enumerate() {
                let gr = global.local_of_gid(gid).expect("gid in global graph");
                for c in 0..3 {
                    assert_eq!(local[0].x.get(i, c), reference[0].x.get(gr, c));
                    assert_eq!(local[0].target.get(i, c), reference[0].target.get(gr, c));
                }
            }
        }
    }

    #[test]
    fn schedule_respects_overrides() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let field = TaylorGreen::new(0.01);
        let ds = Dataset::tgv_autoencode(&mesh, &field, &[0.0, 0.1, 0.2]).batch_size(2);
        assert_eq!(ds.steps_per_epoch(), 2);
        assert_eq!(ds.schedule(7).seed, 7, "seed inherited from the session");
        let pinned = ds.clone().shuffle_seed(99).sequential();
        let s = pinned.schedule(7);
        assert_eq!(s.seed, 99);
        assert!(!s.shuffle);
        assert_eq!(s.order(4), vec![0, 1, 2]);
    }
}
