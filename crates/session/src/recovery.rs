//! Elastic rank-failure recovery: shrink the world, re-partition,
//! restore, resume.
//!
//! The recovery contract, pinned by the chaos suite
//! (`tests/chaos_recovery.rs`):
//!
//! 1. A rank death — injected by a [`FaultPlan`](cgnn_comm::FaultPlan) or
//!    a genuine panic classified by the comm layer's liveness probe —
//!    tears the SPMD world down with a typed
//!    [`RankFailure`] payload instead of hanging.
//! 2. [`Session::try_run`] catches that payload and reports *which* ranks
//!    died; genuine (non-failure) panics propagate unchanged.
//! 3. [`Session::train_epochs_elastic`] then agrees on the new world (the
//!    survivors, i.e. the old world minus the dead set), re-partitions
//!    the mesh with the session's stored
//!    [`PartitionStrategy`](cgnn_partition::PartitionStrategy), restores
//!    parameters + Adam state from the newest **valid** checkpoint
//!    ([`CheckpointPolicy::latest`], which skips corrupt files), and
//!    resumes the deterministic `(seed, epoch)` schedule from the
//!    restored optimizer step.
//!
//! Because the epoch schedule is a pure function of `(seed, epoch)` and
//! resume derives its position from the optimizer step count, the
//! post-recovery loss trajectory is **bit-identical** to a fresh run
//! restored from the same checkpoint at the surviving world size — the
//! invariant that makes recovery testable rather than merely plausible.

use std::io;
use std::path::PathBuf;

use cgnn_comm::RankFailure;
use cgnn_core::EpochReport;

use crate::builder::SessionError;
use crate::checkpoint::CheckpointPolicy;
use crate::handle::RankHandle;
use crate::session::Session;

/// An SPMD run torn down by rank failure(s), as surfaced by
/// [`Session::try_run`]: the set of ranks identified as dead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldFailure {
    /// Ranks (in the failed world's numbering) known to have died,
    /// ascending and deduplicated.
    pub dead: Vec<usize>,
}

impl std::fmt::Display for WorldFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SPMD world lost rank(s) {:?}", self.dead)
    }
}

impl std::error::Error for WorldFailure {}

/// Recovery budget for [`Session::train_epochs_elastic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTolerance {
    /// How many recoveries (world rebuilds) are attempted before giving
    /// up with [`ElasticError::RetriesExhausted`].
    pub max_recoveries: u32,
    /// Smallest world size worth continuing at; fewer survivors is
    /// [`ElasticError::WorldExhausted`].
    pub min_ranks: usize,
}

impl Default for FaultTolerance {
    /// `max_recoveries` from the `CGNN_FAULT_MAX_RETRIES` knob (default
    /// 4), `min_ranks` 1.
    fn default() -> Self {
        FaultTolerance {
            max_recoveries: cgnn_core::config::CGNN_FAULT_MAX_RETRIES.usize_or(4) as u32,
            min_ranks: 1,
        }
    }
}

impl FaultTolerance {
    /// The environment-configured default budget.
    pub fn from_env() -> Self {
        Self::default()
    }

    /// Override the recovery budget.
    pub fn max_recoveries(mut self, max: u32) -> Self {
        self.max_recoveries = max;
        self
    }

    /// Override the smallest world size worth continuing at (clamped to
    /// at least 1).
    pub fn min_ranks(mut self, min: usize) -> Self {
        self.min_ranks = min.max(1);
        self
    }
}

/// Why elastic training gave up.
#[derive(Debug)]
pub enum ElasticError {
    /// The session has no [`CheckpointPolicy`]; there is nothing to
    /// restore from, so recovery would silently lose training progress.
    NoCheckpointPolicy,
    /// Too few survivors to continue.
    WorldExhausted {
        /// Ranks left after the failure.
        survivors: usize,
        /// The configured floor.
        min_ranks: usize,
    },
    /// The recovery budget ran out and the world failed again.
    RetriesExhausted {
        /// Recoveries performed before giving up.
        recoveries: u32,
        /// The failure that exhausted the budget.
        failure: WorldFailure,
    },
    /// Scanning the checkpoint directory failed (I/O, not corruption —
    /// corrupt files are skipped, not fatal).
    Scan(io::Error),
    /// Restoring from the chosen checkpoint failed.
    Restore(io::Error),
    /// Re-partitioning for the survivors failed (e.g. fewer elements
    /// than ranks can never happen shrinking, but the variant keeps the
    /// rebuild fallible end to end).
    Rebuild(SessionError),
}

impl std::fmt::Display for ElasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElasticError::NoCheckpointPolicy => write!(
                f,
                "elastic training needs a checkpoint policy \
                 (Session::builder().checkpoint(..)) to recover from"
            ),
            ElasticError::WorldExhausted {
                survivors,
                min_ranks,
            } => write!(
                f,
                "only {survivors} rank(s) survive, below the floor of {min_ranks}"
            ),
            ElasticError::RetriesExhausted {
                recoveries,
                failure,
            } => write!(f, "gave up after {recoveries} recoveries: {failure}"),
            ElasticError::Scan(e) => write!(f, "checkpoint directory scan failed: {e}"),
            ElasticError::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
            ElasticError::Rebuild(e) => write!(f, "world rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for ElasticError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ElasticError::Scan(e) | ElasticError::Restore(e) => Some(e),
            ElasticError::Rebuild(e) => Some(e),
            _ => None,
        }
    }
}

/// One recovery performed by [`Session::train_epochs_elastic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Ranks that died (in the failed world's numbering).
    pub dead: Vec<usize>,
    /// World size before the failure.
    pub world_before: usize,
    /// World size the run continued at.
    pub world_after: usize,
    /// The checkpoint the rebuilt world restored from; `None` means no
    /// valid checkpoint existed yet and training restarted from seeded
    /// state (at the smaller world size).
    pub restored_from: Option<PathBuf>,
}

/// What an elastic run produced: the surviving world's epoch reports and
/// the recovery history that led there.
#[derive(Debug)]
pub struct ElasticReport {
    /// Per-rank epoch reports of the **final** (successful) attempt, in
    /// rank order of the surviving world. Epochs completed before the
    /// last restored checkpoint are not re-reported; the reports cover
    /// the work the final world actually performed.
    pub reports: Vec<Vec<EpochReport>>,
    /// Every recovery performed, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// World size of the final attempt.
    pub final_ranks: usize,
}

impl Session {
    /// [`Session::run`], but rank failures become a typed `Err` instead
    /// of a panic: an unwind whose payload is a
    /// [`RankFailure`] (an injected kill, a
    /// liveness-probe abort, a stall) is caught and converted into the
    /// dead-rank set; any other panic is a genuine bug and propagates
    /// unchanged.
    ///
    /// # Errors
    /// [`WorldFailure`] naming the dead ranks.
    pub fn try_run<T, F>(&self, f: F) -> Result<Vec<T>, WorldFailure>
    where
        T: Send,
        F: Fn(&mut RankHandle) -> T + Sync,
    {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run(f))) {
            Ok(out) => Ok(out),
            Err(payload) => match RankFailure::from_payload(payload.as_ref()) {
                Some(failure) => {
                    let mut dead = failure.dead_ranks();
                    dead.sort_unstable();
                    dead.dedup();
                    Err(WorldFailure { dead })
                }
                None => std::panic::resume_unwind(payload),
            },
        }
    }

    /// Train to `epochs` epochs, recovering from rank failures: on each
    /// [`WorldFailure`], drop the dead ranks, re-partition the mesh over
    /// the survivors with the stored partition strategy, restore
    /// parameters + optimizer state from the newest valid checkpoint,
    /// and resume the `(seed, epoch)` schedule — bit-identically to a
    /// fresh run restored from that checkpoint at the surviving world
    /// size. Scripted fault plans are re-armed with an incremented
    /// attempt index on every rebuilt world, so multi-failure scenarios
    /// replay deterministically.
    ///
    /// # Errors
    /// See [`ElasticError`]. A session without a checkpoint policy is
    /// refused up front.
    ///
    /// # Panics
    /// Genuine (non-[`RankFailure`]) panics from
    /// the SPMD region propagate unchanged — elasticity must never
    /// swallow a real bug.
    pub fn train_epochs_elastic(
        &self,
        epochs: u64,
        tolerance: &FaultTolerance,
    ) -> Result<ElasticReport, ElasticError> {
        let policy = self
            .checkpoint_policy()
            .cloned()
            .ok_or(ElasticError::NoCheckpointPolicy)?;
        let mut current = self.shallow_clone();
        let mut recoveries: Vec<RecoveryEvent> = Vec::new();
        loop {
            match current.try_run(|h| h.train_epochs(epochs)) {
                Ok(reports) => {
                    return Ok(ElasticReport {
                        reports,
                        recoveries,
                        final_ranks: current.ranks(),
                    })
                }
                Err(failure) => {
                    if recoveries.len() as u32 >= tolerance.max_recoveries {
                        return Err(ElasticError::RetriesExhausted {
                            recoveries: recoveries.len() as u32,
                            failure,
                        });
                    }
                    let world_before = current.ranks();
                    let dead_in_world = failure
                        .dead
                        .iter()
                        .filter(|&&r| r < world_before)
                        .count()
                        .max(1);
                    let survivors = world_before - dead_in_world;
                    if survivors < tolerance.min_ranks.max(1) {
                        return Err(ElasticError::WorldExhausted {
                            survivors,
                            min_ranks: tolerance.min_ranks,
                        });
                    }
                    // Newest *valid* checkpoint: files a dying writer
                    // truncated or corrupted are skipped, falling back
                    // to the previous intact one; none at all means the
                    // survivors restart from seeded state.
                    let report =
                        CheckpointPolicy::latest_report(&policy.dir).map_err(ElasticError::Scan)?;
                    let resized = current.resized(survivors).map_err(ElasticError::Rebuild)?;
                    let mut next = match &report.valid {
                        Some(path) => resized.restore(path).map_err(ElasticError::Restore)?,
                        None => resized,
                    };
                    next.attempt = current.attempt + 1;
                    recoveries.push(RecoveryEvent {
                        dead: failure.dead,
                        world_before,
                        world_after: survivors,
                        restored_from: report.valid,
                    });
                    current = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_builders_and_floor() {
        let t = FaultTolerance::from_env().max_recoveries(2).min_ranks(0);
        assert_eq!(t.max_recoveries, 2);
        assert_eq!(t.min_ranks, 1, "floor is clamped to at least one rank");
    }

    #[test]
    fn elastic_errors_display() {
        let failure = WorldFailure { dead: vec![1] };
        assert!(failure.to_string().contains("[1]"));
        let e = ElasticError::RetriesExhausted {
            recoveries: 3,
            failure,
        };
        assert!(e.to_string().contains("3 recoveries"));
        assert!(ElasticError::NoCheckpointPolicy
            .to_string()
            .contains("checkpoint policy"));
        let w = ElasticError::WorldExhausted {
            survivors: 0,
            min_ranks: 2,
        };
        assert!(w.to_string().contains("below the floor"));
    }
}
