//! Periodic checkpoint schedules: opt-in every-k-step checkpointing with
//! retention, riding on the epoch training loop.
//!
//! A [`CheckpointPolicy`] makes rank 0 write a full training checkpoint
//! (parameters + Adam state, the same container
//! [`RankHandle::save_params`](crate::RankHandle::save_params) produces)
//! every `every_steps` optimizer steps, pruning old files beyond the
//! retention count. Because resume is bit-exact, any retained file is a
//! valid crash-recovery point: `Session::restore(latest)` followed by the
//! same `train_epochs` call reproduces the uninterrupted run bit for bit.

use std::io;
use std::path::{Path, PathBuf};

use cgnn_core::Trainer;

/// Width of the zero-padded step number in checkpoint file names; lexical
/// order == numeric order up to 10^10 steps.
const STEP_DIGITS: usize = 10;

/// A checkpoint file rejected during a [`CheckpointPolicy::latest_report`]
/// scan: which file, and the typed parse/validation error explaining why
/// (truncation, checksum mismatch, malformed framing, unreadable file).
#[derive(Debug)]
pub struct CorruptCheckpoint {
    /// The rejected `step-<n>.ckpt` file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub reason: io::Error,
}

impl std::fmt::Display for CorruptCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt checkpoint {}: {}",
            self.path.display(),
            self.reason
        )
    }
}

/// Outcome of a newest-first checkpoint-directory scan
/// ([`CheckpointPolicy::latest_report`]): the newest checkpoint that
/// parses, plus every newer file that had to be skipped as corrupt.
#[derive(Debug, Default)]
pub struct LatestReport {
    /// The newest valid checkpoint, if any file parsed.
    pub valid: Option<PathBuf>,
    /// Checkpoint files rejected before (or instead of) finding a valid
    /// one, newest first.
    pub rejected: Vec<CorruptCheckpoint>,
}

/// An every-k-step checkpoint schedule with retention, configured through
/// `Session::builder().checkpoint(..)`.
///
/// ```
/// use cgnn_session::CheckpointPolicy;
///
/// let dir = std::env::temp_dir().join("cgnn-policy-doc");
/// let policy = CheckpointPolicy::every(50, &dir).retain(3);
/// assert!(policy.is_due(100));
/// assert!(!policy.is_due(101));
/// assert!(policy.path_for_step(100).ends_with("step-0000000100.ckpt"));
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint after every `every_steps` optimizer steps.
    pub every_steps: u64,
    /// Directory the `step-<n>.ckpt` files are written to (created on
    /// first save).
    pub dir: PathBuf,
    /// How many most-recent checkpoints to keep; `0` keeps all.
    pub retain: usize,
}

impl CheckpointPolicy {
    /// Checkpoint every `every_steps` optimizer steps into `dir`, keeping
    /// the 3 most recent files (tune with [`CheckpointPolicy::retain`]).
    ///
    /// # Panics
    /// If `every_steps` is zero.
    pub fn every(every_steps: u64, dir: impl Into<PathBuf>) -> Self {
        assert!(every_steps > 0, "checkpoint interval must be at least 1");
        CheckpointPolicy {
            every_steps,
            dir: dir.into(),
            retain: 3,
        }
    }

    /// Keep only the `retain` most recent checkpoints (`0` = keep all).
    pub fn retain(mut self, retain: usize) -> Self {
        self.retain = retain;
        self
    }

    /// Whether a checkpoint is due after optimizer step `step`.
    pub fn is_due(&self, step: u64) -> bool {
        step > 0 && step.is_multiple_of(self.every_steps)
    }

    /// The file a checkpoint taken at optimizer step `step` is written to:
    /// `dir/step-<zero-padded step>.ckpt`.
    pub fn path_for_step(&self, step: u64) -> PathBuf {
        let width = STEP_DIGITS;
        self.dir.join(format!("step-{step:0width$}.ckpt"))
    }

    /// Parse the optimizer step out of a checkpoint file name produced by
    /// [`CheckpointPolicy::path_for_step`]; `None` for foreign files.
    pub fn step_of(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let digits = name.strip_prefix("step-")?.strip_suffix(".ckpt")?;
        digits.parse().ok()
    }

    /// The most recent **valid** checkpoint in `dir` (highest step number
    /// that parses), if any — the crash-recovery entry point: feed it to
    /// `Session::restore`. Returns `Ok(None)` when the directory does not
    /// exist or holds no valid checkpoint files.
    ///
    /// Candidates are validated newest-first by fully parsing them
    /// (container framing, bounds, and the trailing checksum), so a
    /// truncated or bit-flipped file — e.g. one the writer died in the
    /// middle of — is *skipped* in favor of the previous intact
    /// checkpoint instead of being handed to `restore` to choke on.
    /// Callers that must distinguish "no checkpoints" from "only corrupt
    /// checkpoints" use [`CheckpointPolicy::latest_report`].
    pub fn latest(dir: impl AsRef<Path>) -> io::Result<Option<PathBuf>> {
        Ok(Self::latest_report(dir)?.valid)
    }

    /// Like [`CheckpointPolicy::latest`], but also report every checkpoint
    /// file that was rejected as corrupt during the newest-first scan.
    /// The outer `Err` is reserved for directory-scan failures; corrupt
    /// files are data, not errors, so a caller can decide whether
    /// "nothing valid but corpses present" is fatal (the serve control
    /// plane treats it as a startup error) or survivable (the elastic
    /// recovery loop falls back to seeded state).
    pub fn latest_report(dir: impl AsRef<Path>) -> io::Result<LatestReport> {
        let dir = dir.as_ref();
        if !dir.exists() {
            return Ok(LatestReport::default());
        }
        let mut steps: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)?
            .filter_map(|e| {
                let path = e.ok()?.path();
                Self::step_of(&path).map(|s| (s, path))
            })
            .collect();
        steps.sort_unstable_by_key(|(s, _)| std::cmp::Reverse(*s));
        let mut rejected = Vec::new();
        for (_, path) in steps {
            match cgnn_tensor::load_checkpoint(&path) {
                Ok(_) => {
                    return Ok(LatestReport {
                        valid: Some(path),
                        rejected,
                    })
                }
                Err(reason) => rejected.push(CorruptCheckpoint { path, reason }),
            }
        }
        Ok(LatestReport {
            valid: None,
            rejected,
        })
    }

    /// Write the checkpoint for `step` and prune beyond the retention
    /// count. Called by the epoch loop on rank 0 only (replicas are
    /// bit-identical, one writer suffices).
    pub(crate) fn save_step(&self, trainer: &Trainer, step: u64) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        cgnn_tensor::save_checkpoint(
            &trainer.params,
            &trainer.opt.state(),
            self.path_for_step(step),
        )?;
        self.prune()
    }

    /// Delete the oldest checkpoints beyond `retain` (no-op for `0`).
    fn prune(&self) -> io::Result<()> {
        if self.retain == 0 {
            return Ok(());
        }
        let mut steps: Vec<(u64, PathBuf)> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| {
                let path = e.ok()?.path();
                Self::step_of(&path).map(|s| (s, path))
            })
            .collect();
        steps.sort_unstable_by_key(|(s, _)| *s);
        let excess = steps.len().saturating_sub(self.retain);
        for (_, path) in steps.into_iter().take(excess) {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_paths_round_trip_and_sort() {
        let p = CheckpointPolicy::every(10, "/tmp/x");
        let a = p.path_for_step(5);
        let b = p.path_for_step(40);
        assert_eq!(CheckpointPolicy::step_of(&a), Some(5));
        assert_eq!(CheckpointPolicy::step_of(&b), Some(40));
        assert!(a.to_str() < b.to_str(), "zero padding keeps lexical order");
        assert_eq!(
            CheckpointPolicy::step_of(Path::new("/tmp/other.ckpt")),
            None
        );
    }

    #[test]
    fn due_only_on_interval_multiples() {
        let p = CheckpointPolicy::every(4, "/tmp/x");
        assert!(!p.is_due(0), "step 0 is the seed state, not a checkpoint");
        assert!(p.is_due(4));
        assert!(p.is_due(8));
        assert!(!p.is_due(6));
    }

    /// Write a real (parse-valid) checkpoint at `path`.
    fn valid_ckpt(path: &Path) {
        let (params, _) = cgnn_core::ConsistentGnn::seeded(cgnn_core::GnnConfig::small(), 0);
        let opt = cgnn_tensor::AdamState {
            t: 0,
            m: vec![],
            v: vec![],
        };
        cgnn_tensor::save_checkpoint(&params, &opt, path).expect("save checkpoint");
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cgnn_policy_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn latest_finds_highest_step() {
        let dir = tmp_dir("latest");
        let p = CheckpointPolicy::every(1, &dir);
        for s in [3u64, 12, 7] {
            valid_ckpt(&p.path_for_step(s));
        }
        std::fs::write(dir.join("unrelated.txt"), b"x").expect("write");
        let latest = CheckpointPolicy::latest(&dir).expect("scan");
        assert_eq!(latest, Some(p.path_for_step(12)));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(CheckpointPolicy::latest(&dir).expect("scan"), None);
    }

    #[test]
    fn latest_skips_corrupt_newest_and_falls_back() {
        let dir = tmp_dir("fallback");
        let p = CheckpointPolicy::every(1, &dir);
        valid_ckpt(&p.path_for_step(3));
        // Step 12 is newest but truncated — a writer that died mid-save.
        valid_ckpt(&p.path_for_step(12));
        let full = std::fs::read(p.path_for_step(12)).expect("read");
        std::fs::write(p.path_for_step(12), &full[..full.len() / 2]).expect("truncate");
        let report = CheckpointPolicy::latest_report(&dir).expect("scan");
        assert_eq!(report.valid, Some(p.path_for_step(3)), "must fall back");
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].path, p.path_for_step(12));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_corrupt_is_no_valid_checkpoint_not_a_panic() {
        let dir = tmp_dir("corrupt");
        let p = CheckpointPolicy::every(1, &dir);
        // A bit-flipped file and a garbage file: both typed rejections.
        valid_ckpt(&p.path_for_step(5));
        let mut bytes = std::fs::read(p.path_for_step(5)).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(p.path_for_step(5), &bytes).expect("flip");
        std::fs::write(p.path_for_step(9), b"not a checkpoint").expect("write");
        let report = CheckpointPolicy::latest_report(&dir).expect("scan");
        assert_eq!(report.valid, None);
        assert_eq!(report.rejected.len(), 2, "both corpses reported");
        assert_eq!(
            CheckpointPolicy::latest(&dir).expect("scan"),
            None,
            "latest() treats an all-corrupt directory as empty"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
