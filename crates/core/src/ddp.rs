//! Distributed-data-parallel gradient reduction.
//!
//! Each rank's tape produces the partial gradient of the consistent loss
//! (the `1/(N_eff F_y) * dS_r/dtheta` term — see [`crate::loss`]); summing
//! the partials across ranks yields the exact R=1 gradient (paper Eq. 3).
//! Gradients are flattened into a single fused buffer before the all-reduce,
//! like PyTorch DDP's gradient buckets.

use cgnn_comm::Comm;
use cgnn_tensor::nn::{BoundParams, ParamId, ParamSet};
use cgnn_tensor::{Gradients, Tensor};

/// Sum-all-reduce the parameter gradients across ranks.
///
/// Returns one tensor per parameter, in registration order; parameters that
/// did not participate in the loss get zero gradients. The reduction is
/// deterministic (rank-ordered), so replicas stay bit-identical.
pub fn reduce_gradients(
    params: &ParamSet,
    bound: &BoundParams,
    grads: &Gradients,
    comm: &Comm,
) -> Vec<Tensor> {
    reduce_flat_gradients(params, flatten_local_gradients(params, bound, grads), comm)
}

/// Flatten one tape's parameter gradients into a single fused buffer in
/// registration order (zeros for parameters the loss did not touch). The
/// local half of [`reduce_gradients`], split out so mini-batch training
/// ([`Trainer::step_batch`](crate::Trainer::step_batch)) can accumulate
/// several backward passes before issuing **one** all-reduce per optimizer
/// step.
pub fn flatten_local_gradients(
    params: &ParamSet,
    bound: &BoundParams,
    grads: &Gradients,
) -> Vec<f64> {
    let mut flat = Vec::with_capacity(params.num_scalars());
    for (i, t) in params.tensors().iter().enumerate() {
        match grads.get(bound.var(ParamId(i))) {
            Some(g) => {
                debug_assert_eq!(g.shape(), t.shape(), "gradient shape mismatch");
                flat.extend_from_slice(g.data());
            }
            None => flat.extend(std::iter::repeat_n(0.0, t.len())),
        }
    }
    flat
}

/// Sum-all-reduce an already-flattened gradient buffer (as produced by
/// [`flatten_local_gradients`]) and unflatten it back into one tensor per
/// parameter. The communicating half of [`reduce_gradients`].
pub fn reduce_flat_gradients(params: &ParamSet, mut flat: Vec<f64>, comm: &Comm) -> Vec<Tensor> {
    comm.all_reduce_sum(&mut flat);
    let mut out = Vec::with_capacity(params.len());
    let mut off = 0;
    for t in params.tensors() {
        let n = t.len();
        out.push(Tensor::from_vec(
            t.rows(),
            t.cols(),
            flat[off..off + n].to_vec(),
        ));
        off += n;
    }
    out
}

/// Local (no-communication) gradient extraction — the R = 1 path, and the
/// building block for gradient-consistency tests.
pub fn local_gradients(params: &ParamSet, bound: &BoundParams, grads: &Gradients) -> Vec<Tensor> {
    params
        .tensors()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            grads
                .get(bound.var(ParamId(i)))
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(t.rows(), t.cols()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_comm::World;
    use cgnn_tensor::{ParamSet, Tape, Tensor};

    #[test]
    fn reduce_sums_partials_across_ranks() {
        let out = World::run(3, |comm| {
            let mut params = ParamSet::new();
            params.register("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let w = bound.var(ParamId(0));
            // loss_r = (rank+1) * sum(w); d/dw = rank+1 per entry.
            let s = tape.sum(w);
            let l = tape.scale(s, (comm.rank() + 1) as f64);
            let grads = tape.backward(l);
            let reduced = reduce_gradients(&params, &bound, &grads, comm);
            reduced[0].data().to_vec()
        });
        // 1 + 2 + 3 = 6 per entry, identical on all ranks.
        for v in out {
            assert_eq!(v, vec![6.0, 6.0]);
        }
    }

    #[test]
    fn unused_parameters_reduce_to_zero() {
        let out = World::run(2, |comm| {
            let mut params = ParamSet::new();
            params.register("used", Tensor::scalar(2.0));
            params.register("unused", Tensor::from_vec(1, 3, vec![1.0; 3]));
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let s = tape.sum(bound.var(ParamId(0)));
            let grads = tape.backward(s);
            let reduced = reduce_gradients(&params, &bound, &grads, comm);
            (reduced[0].item(), reduced[1].data().to_vec())
        });
        for (used, unused) in out {
            assert_eq!(used, 2.0);
            assert_eq!(unused, vec![0.0; 3]);
        }
    }
}
