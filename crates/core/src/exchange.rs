//! Halo exchange strategies (paper Sec. III).
//!
//! The paper compares four ways of realizing the differentiable halo swap
//! of Eq. 4c-d; this module turns each into an implementation of the
//! object-safe [`HaloExchange`] trait so that new exchange schedules are a
//! new `impl`, not a new match arm:
//!
//! * [`NoExchange`] — skip the exchange entirely: the *inconsistent*
//!   baseline ("standard NMP") used to isolate communication costs,
//! * [`DenseAllToAll`] — dense `all_to_all` with equal-sized buffers to
//!   *every* rank, dummy traffic included (the naive baseline),
//! * [`NeighborAllToAll`] — the same `all_to_all` but with empty buffers
//!   for non-neighbour ranks, which collective libraries turn into
//!   neighbour send/receives (the paper's efficient variant),
//! * [`SendRecvExchange`] — explicit point-to-point sends and receives,
//! * [`OverlappedNeighborExchange`] — **new, beyond the paper**: the
//!   Send-Recv schedule rebuilt on the non-blocking `isend`/`irecv` API:
//!   every send is posted before any wait, every receive is posted before
//!   any completion, leaving a window in which a GPU pipeline would run
//!   the previous layer's node MLP while halos are in flight. Arithmetic
//!   is bit-identical to Send-Recv (same payloads, same neighbour
//!   accumulation order); `cgnn-perf` prices the hidden fraction of its
//!   transfer time through the machine model's overlap fraction,
//! * [`CoalescedAllGather`] — **new, beyond the paper**: every neighbour
//!   payload fused into one contiguous buffer shipped with a single
//!   `all_gather` collective per exchange. One collective entry instead of
//!   one message per neighbour; the price is that the fused buffer is
//!   replicated to all ranks, so it only pays off at modest rank counts
//!   (priced by `cgnn-perf`). Cross-*layer* batching is impossible without
//!   changing the arithmetic — layer `m + 1` consumes layer `m`'s exchanged
//!   output — so coalescing fuses across *neighbours* within each of the
//!   `M` per-layer exchanges, which preserves Eq. 4 bit-for-bit.
//!
//! All consistent strategies produce identical arithmetic (verified by the
//! equivalence suites); they differ only in traffic, which [`cgnn_comm`]
//! records, [`HaloExchange::traffic_per_exchange`] predicts, and
//! `cgnn-perf` prices.
//!
//! [`HaloExchangeMode`] survives as a thin, `#[non_exhaustive]` constructor
//! enum for the built-in strategies; custom strategies go straight through
//! [`HaloContext::with_strategy`].

use std::sync::Arc;

use cgnn_comm::{Comm, RecvRequest, SendRequest};
use cgnn_graph::LocalGraph;
use cgnn_tensor::Tensor;

/// Tag for point-to-point halo traffic.
const HALO_TAG: u32 = 0x4841;

/// Predicted per-rank traffic of **one** halo exchange call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeTraffic {
    /// Non-empty messages this rank injects (collective or point-to-point).
    pub messages: u64,
    /// Payload bytes this rank injects.
    pub bytes: u64,
}

/// An object-safe halo exchange strategy: one synchronization of shared
/// node rows across partition boundaries (paper Eqs. 4c-4d).
///
/// Contract for consistent strategies: after [`HaloExchange::exchange`],
/// every coincident copy of a shared node holds the **sum** of all
/// pre-exchange copies, and interior rows are untouched. The operator is
/// globally symmetric (`H = H^T`), which is why the backward pass of the
/// differentiable swap is the same exchange applied to the adjoints.
///
/// Implementations that need a communication plan (buffer sizes, peer
/// offsets) compute it in their constructor, which is then a *collective*
/// — every rank must build the strategy at the same point.
pub trait HaloExchange: Send + Sync {
    /// Short label used in experiment output (matches the paper's legends).
    fn label(&self) -> &'static str;

    /// Whether this strategy actually synchronizes halos (i.e. whether the
    /// resulting message passing is consistent).
    fn is_consistent(&self) -> bool;

    /// Execute one halo swap + synchronization on a `[n_local, cols]`
    /// tensor, returning `a*` with shared rows summed across ranks.
    fn exchange(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Tensor;

    /// Split-phase variant for strategies that can expose a compute/comm
    /// overlap window: post every send and receive of the exchange of `a`
    /// and return the in-flight handle **without waiting**. The caller runs
    /// independent compute, then [`PendingExchange::finish`]es, which must
    /// leave `a` exactly as [`HaloExchange::exchange`] would have.
    ///
    /// The default (`None`) marks a strategy whose schedule cannot be
    /// split; callers fall back to the blocking [`HaloExchange::exchange`].
    fn begin(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Option<PendingExchange> {
        let _ = (a, graph, comm);
        None
    }

    /// Predicted per-rank traffic of one exchange of a `cols`-wide tensor —
    /// the accounting the weak-scaling model prices. The default is the
    /// neighbour-exact volume (what a perfect implementation would ship).
    fn traffic_per_exchange(
        &self,
        graph: &LocalGraph,
        world: usize,
        cols: usize,
    ) -> ExchangeTraffic {
        let _ = world;
        ExchangeTraffic {
            messages: graph.halo.neighbors.len() as u64,
            bytes: (graph.halo.halo_count() * cols * std::mem::size_of::<f64>()) as u64,
        }
    }
}

/// Which built-in halo exchange strategy to run. Kept as a thin constructor
/// over the [`HaloExchange`] implementations for ergonomics and backwards
/// compatibility; `#[non_exhaustive]` because new strategies are expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HaloExchangeMode {
    /// No exchange: inconsistent "standard" message passing.
    None,
    /// Dense all-to-all with uniform (padded) buffers.
    AllToAll,
    /// All-to-all with empty buffers for non-neighbours.
    NeighborAllToAll,
    /// Explicit point-to-point sends/receives between neighbours.
    SendRecv,
    /// Fused-buffer exchange: all neighbour payloads coalesced into one
    /// buffer, shipped with a single all-gather collective.
    Coalesced,
    /// Send-Recv rebuilt on non-blocking `isend`/`irecv`: all sends and
    /// receives posted before any wait, exposing a compute-overlap window.
    Overlapped,
}

impl HaloExchangeMode {
    /// Short label used in experiment output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            HaloExchangeMode::None => "none",
            HaloExchangeMode::AllToAll => "A2A",
            HaloExchangeMode::NeighborAllToAll => "N-A2A",
            HaloExchangeMode::SendRecv => "Send-Recv",
            HaloExchangeMode::Coalesced => "Coal-AG",
            HaloExchangeMode::Overlapped => "Ovl-SR",
        }
    }

    /// Whether this mode actually synchronizes halos (i.e. is consistent).
    pub fn is_consistent(self) -> bool {
        !matches!(self, HaloExchangeMode::None)
    }

    /// Every built-in mode, in presentation order: the paper's four
    /// (including the inconsistent `None` baseline) plus the coalesced and
    /// overlapped extensions. Filter with
    /// [`HaloExchangeMode::is_consistent`] if only the synchronizing modes
    /// are wanted.
    pub fn all() -> [HaloExchangeMode; 6] {
        [
            HaloExchangeMode::None,
            HaloExchangeMode::AllToAll,
            HaloExchangeMode::NeighborAllToAll,
            HaloExchangeMode::SendRecv,
            HaloExchangeMode::Coalesced,
            HaloExchangeMode::Overlapped,
        ]
    }

    /// Build the strategy this mode names. Collective for modes that need a
    /// communication plan ([`HaloExchangeMode::AllToAll`] all-reduces the
    /// padding unit, [`HaloExchangeMode::Coalesced`] gathers peer offsets),
    /// so every rank must call it at the same point.
    pub fn build(self, comm: &Comm, graph: &LocalGraph) -> Arc<dyn HaloExchange> {
        match self {
            HaloExchangeMode::None => Arc::new(NoExchange),
            HaloExchangeMode::AllToAll => Arc::new(DenseAllToAll::prepare(comm, graph)),
            HaloExchangeMode::NeighborAllToAll => Arc::new(NeighborAllToAll),
            HaloExchangeMode::SendRecv => Arc::new(SendRecvExchange),
            HaloExchangeMode::Coalesced => Arc::new(CoalescedAllGather::prepare(comm, graph)),
            HaloExchangeMode::Overlapped => Arc::new(OverlappedNeighborExchange),
        }
    }
}

impl std::fmt::Display for HaloExchangeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so `{:<10}`-style table formatting works.
        f.pad(self.label())
    }
}

/// Per-rank context for halo exchanges: the communicator and the strategy.
///
/// Construction through [`HaloContext::new`] is a collective operation for
/// strategies with a communication plan, so every rank must build it at the
/// same point.
#[derive(Clone)]
pub struct HaloContext {
    /// The communicator the strategy's collectives run over.
    pub comm: Comm,
    strategy: Arc<dyn HaloExchange>,
}

impl HaloContext {
    /// Collective constructor; call on every rank with its own `graph`.
    pub fn new(comm: Comm, graph: &LocalGraph, mode: HaloExchangeMode) -> Self {
        let strategy = mode.build(&comm, graph);
        HaloContext { comm, strategy }
    }

    /// Wrap a custom (or pre-built) strategy. Non-collective by itself; the
    /// strategy's own constructor carries any collective setup.
    pub fn with_strategy(comm: Comm, strategy: Arc<dyn HaloExchange>) -> Self {
        HaloContext { comm, strategy }
    }

    /// Non-collective constructor for single-rank (R = 1) use.
    pub fn single(comm: Comm) -> Self {
        assert_eq!(comm.size(), 1, "single() is only for R = 1 worlds");
        HaloContext {
            comm,
            strategy: Arc::new(NoExchange),
        }
    }

    /// The strategy driving this context's exchanges.
    pub fn strategy(&self) -> &Arc<dyn HaloExchange> {
        &self.strategy
    }

    /// Short strategy label (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        self.strategy.label()
    }

    /// Whether exchanges through this context synchronize halos.
    pub fn is_consistent(&self) -> bool {
        self.strategy.is_consistent()
    }
}

/// Execute one halo swap + synchronization (paper Eqs. 4c-4d) on a raw
/// node-row tensor: returns `a*` where
/// `a*[i] = a[i] + sum over neighbour copies of a[i']` for shared nodes,
/// and `a*[i] = a[i]` for interior nodes.
///
/// The operation is its own adjoint (the global operator `I + sum of swaps`
/// is symmetric), which is exactly why the backward pass of the
/// differentiable halo exchange is another halo exchange — see
/// [`crate::mp_layer::HaloSyncOp`].
pub fn halo_exchange_apply(a: &Tensor, graph: &LocalGraph, ctx: &HaloContext) -> Tensor {
    debug_assert_eq!(
        a.rows(),
        graph.n_local(),
        "halo exchange expects local rows only"
    );
    ctx.strategy.exchange(a, graph, &ctx.comm)
}

/// Pack the shared rows destined for neighbour index `ni` into `buf`.
fn pack_neighbor(buf: &mut Vec<f64>, a: &Tensor, graph: &LocalGraph, ni: usize) {
    for &lid in &graph.halo.send_ids[ni] {
        buf.extend_from_slice(a.row(lid));
    }
}

/// Synchronization step (Eq. 4d): add each neighbour's buffered aggregates
/// into the owner rows. `recv_of(ni, s)` yields the payload received from
/// neighbour index `ni` (rank `s`), laid out as `shared_count x cols` in
/// ascending-gid order.
fn accumulate_halos<'a>(
    out: &mut Tensor,
    graph: &LocalGraph,
    cols: usize,
    recv_of: impl Fn(usize, usize) -> &'a [f64],
) {
    for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
        let ids = &graph.halo.send_ids[ni];
        let buf = recv_of(ni, s);
        assert!(
            buf.len() >= ids.len() * cols,
            "halo payload from rank {s} too short: {} < {}",
            buf.len(),
            ids.len() * cols
        );
        for (k, &lid) in ids.iter().enumerate() {
            let src = &buf[k * cols..(k + 1) * cols];
            for (o, &v) in out.row_mut(lid).iter_mut().zip(src.iter()) {
                *o += v;
            }
        }
    }
}

/// An in-flight halo exchange: every isend/irecv posted, none completed.
///
/// Between construction ([`HaloExchange::begin`]) and
/// [`PendingExchange::finish`] lies the **overlap window** — the stretch
/// where the NMP layer runs the interior-node MLP while halos travel (the
/// restructuring ROADMAP item #1 called for). `finish` completes receives
/// in posted neighbour order, so the accumulation order — and therefore
/// every bit of the result — matches the blocking Send-Recv schedule.
pub struct PendingExchange {
    sends: Vec<SendRequest>,
    recvs: Vec<RecvRequest>,
}

impl PendingExchange {
    /// Wait for all receives (in posted neighbour order), accumulate them
    /// into the shared rows of `out` (Eq. 4d), and drain the send handles.
    /// Interior rows of `out` are untouched.
    pub fn finish(self, out: &mut Tensor, graph: &LocalGraph) {
        let cols = out.cols();
        let recvs: Vec<Vec<f64>> = self.recvs.into_iter().map(RecvRequest::wait).collect();
        for send in self.sends {
            send.wait();
        }
        accumulate_halos(out, graph, cols, |ni, _| recvs[ni].as_slice());
    }
}

/// The inconsistent baseline: no synchronization at all ("standard NMP").
#[derive(Debug, Clone, Copy, Default)]
pub struct NoExchange;

impl HaloExchange for NoExchange {
    fn label(&self) -> &'static str {
        HaloExchangeMode::None.label()
    }

    fn is_consistent(&self) -> bool {
        false
    }

    fn exchange(&self, a: &Tensor, _graph: &LocalGraph, _comm: &Comm) -> Tensor {
        a.clone()
    }

    fn traffic_per_exchange(
        &self,
        _g: &LocalGraph,
        _world: usize,
        _cols: usize,
    ) -> ExchangeTraffic {
        ExchangeTraffic::default()
    }
}

/// Dense all-to-all with uniform padded buffers to every rank — the paper's
/// naive baseline ("equal-sized buffers regardless of whether communication
/// is needed").
#[derive(Debug, Clone, Copy)]
pub struct DenseAllToAll {
    /// Maximum number of shared nodes with any single neighbour, over all
    /// rank pairs in the world — the padding unit.
    pub max_shared: usize,
}

impl DenseAllToAll {
    /// Collective constructor: all-reduces the padding unit.
    pub fn prepare(comm: &Comm, graph: &LocalGraph) -> Self {
        let local_max = graph.halo.send_ids.iter().map(Vec::len).max().unwrap_or(0) as f64;
        let mut buf = [local_max];
        comm.all_reduce_max(&mut buf);
        DenseAllToAll {
            max_shared: buf[0] as usize,
        }
    }
}

impl HaloExchange for DenseAllToAll {
    fn label(&self) -> &'static str {
        HaloExchangeMode::AllToAll.label()
    }

    fn is_consistent(&self) -> bool {
        true
    }

    fn exchange(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Tensor {
        let mut out = a.clone();
        let cols = a.cols();
        let uniform_len = self.max_shared * cols;
        // detlint: allow(hotpath-reachability, "owned-Vec wire contract: the comm API takes each message by value, so a fresh send buffer per call is the protocol; pooled reuse needs the compressed-wire API tracked in ROADMAP")
        let mut send: Vec<Vec<f64>> = vec![Vec::new(); comm.size()];
        for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
            // detlint: allow(hotpath-reachability, "owned-Vec wire contract: the comm API takes each message by value, so a fresh send buffer per call is the protocol; pooled reuse needs the compressed-wire API tracked in ROADMAP")
            let mut buf = Vec::with_capacity(uniform_len);
            pack_neighbor(&mut buf, a, graph, ni);
            buf.resize(uniform_len, 0.0);
            send[s] = buf;
        }
        // Dummy full-size buffers to non-neighbours.
        for (dst, buf) in send.iter_mut().enumerate() {
            if dst != comm.rank() && buf.is_empty() {
                // detlint: allow(hotpath-reachability, "owned-Vec wire contract: the comm API takes each message by value, so a fresh send buffer per call is the protocol; pooled reuse needs the compressed-wire API tracked in ROADMAP")
                *buf = vec![0.0; uniform_len];
            }
        }
        let recv = comm.all_to_all(send);
        accumulate_halos(&mut out, graph, cols, |_, s| recv[s].as_slice());
        out
    }

    fn traffic_per_exchange(&self, _g: &LocalGraph, world: usize, cols: usize) -> ExchangeTraffic {
        if self.max_shared == 0 {
            // Zero-length buffers are never injected, even to "everyone".
            return ExchangeTraffic::default();
        }
        let peers = world.saturating_sub(1) as u64;
        ExchangeTraffic {
            messages: peers,
            bytes: peers * (self.max_shared * cols * std::mem::size_of::<f64>()) as u64,
        }
    }
}

/// All-to-all with empty buffers for non-neighbours — the paper's efficient
/// variant (the `torch.empty(0)` trick).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighborAllToAll;

impl HaloExchange for NeighborAllToAll {
    fn label(&self) -> &'static str {
        HaloExchangeMode::NeighborAllToAll.label()
    }

    fn is_consistent(&self) -> bool {
        true
    }

    fn exchange(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Tensor {
        let mut out = a.clone();
        let cols = a.cols();
        // detlint: allow(hotpath-reachability, "owned-Vec wire contract: the comm API takes each message by value, so a fresh send buffer per call is the protocol; pooled reuse needs the compressed-wire API tracked in ROADMAP")
        let mut send: Vec<Vec<f64>> = vec![Vec::new(); comm.size()];
        for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
            // detlint: allow(hotpath-reachability, "owned-Vec wire contract: the comm API takes each message by value, so a fresh send buffer per call is the protocol; pooled reuse needs the compressed-wire API tracked in ROADMAP")
            let mut buf = Vec::with_capacity(graph.halo.send_ids[ni].len() * cols);
            pack_neighbor(&mut buf, a, graph, ni);
            send[s] = buf;
        }
        let recv = comm.all_to_all(send);
        accumulate_halos(&mut out, graph, cols, |_, s| recv[s].as_slice());
        out
    }
}

/// Explicit point-to-point sends and receives between neighbours.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendRecvExchange;

impl HaloExchange for SendRecvExchange {
    fn label(&self) -> &'static str {
        HaloExchangeMode::SendRecv.label()
    }

    fn is_consistent(&self) -> bool {
        true
    }

    fn exchange(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Tensor {
        let mut out = a.clone();
        let cols = a.cols();
        for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
            // detlint: allow(hotpath-reachability, "owned-Vec wire contract: the comm API takes each message by value, so a fresh send buffer per call is the protocol; pooled reuse needs the compressed-wire API tracked in ROADMAP")
            let mut buf = Vec::with_capacity(graph.halo.send_ids[ni].len() * cols);
            pack_neighbor(&mut buf, a, graph, ni);
            comm.send(s, HALO_TAG, buf);
        }
        let recvs: Vec<Vec<f64>> = graph
            .halo
            .neighbors
            .iter()
            .map(|&s| comm.recv(s, HALO_TAG))
            .collect();
        accumulate_halos(&mut out, graph, cols, |ni, _| recvs[ni].as_slice());
        out
    }
}

/// The Send-Recv schedule rebuilt on the non-blocking comm API — the first
/// consumer of `isend`/`irecv`, and the prototype for hiding halo latency
/// behind compute.
///
/// Every neighbour send is posted (`isend`) before anything waits, and
/// every receive is posted (`irecv`) before any completion; only then are
/// the receives waited, in neighbour order. The split-phase
/// [`HaloExchange::begin`] / [`PendingExchange::finish`] form exposes the
/// window between posting and waiting to the NMP layer, which fills it
/// with the **interior-node MLP** (see `mp_layer`): real compute executes
/// while halos are in flight. The perf model prices the hidden fraction
/// (`cgnn-perf::overlapped_neighbor_time`, driven by the machine model's
/// overlap fraction), and the `hotpath` bench measures it.
///
/// Completing receives in posted neighbour order (not arrival order) keeps
/// the accumulation order fixed, making this strategy bit-identical to
/// [`SendRecvExchange`] — only the schedule differs.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlappedNeighborExchange;

impl HaloExchange for OverlappedNeighborExchange {
    fn label(&self) -> &'static str {
        HaloExchangeMode::Overlapped.label()
    }

    fn is_consistent(&self) -> bool {
        true
    }

    fn exchange(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Tensor {
        // Blocking form = split form with an empty overlap window.
        let mut out = a.clone();
        self.begin(a, graph, comm)
            .expect("overlapped strategy always splits")
            .finish(&mut out, graph);
        out
    }

    fn begin(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Option<PendingExchange> {
        let cols = a.cols();
        // Phase 1: post every send without blocking.
        let sends: Vec<SendRequest> = graph
            .halo
            .neighbors
            .iter()
            .enumerate()
            .map(|(ni, &s)| {
                // detlint: allow(hotpath-reachability, "owned-Vec wire contract: the comm API takes each message by value, so a fresh send buffer per call is the protocol; pooled reuse needs the compressed-wire API tracked in ROADMAP")
                let mut buf = Vec::with_capacity(graph.halo.send_ids[ni].len() * cols);
                pack_neighbor(&mut buf, a, graph, ni);
                comm.isend(s, HALO_TAG, buf)
            })
            .collect();
        // Phase 2: post every receive before waiting on any of them.
        let recvs: Vec<RecvRequest> = graph
            .halo
            .neighbors
            .iter()
            .map(|&s| comm.irecv(s, HALO_TAG))
            .collect();
        // <- the overlap window is open until `finish` is called.
        Some(PendingExchange { sends, recvs })
    }
}

/// Fused-buffer halo exchange: all neighbour payloads packed into **one**
/// contiguous buffer per exchange, shipped with a single `all_gather`
/// collective. Each receiver slices the block addressed to it out of every
/// neighbour's fused buffer using a peer-offset plan gathered once at
/// construction time.
///
/// Compared to [`NeighborAllToAll`] this trades bandwidth for latency: one
/// collective entry and one allocation instead of one message per
/// neighbour, but the fused buffer is replicated to all ranks — a fifth
/// point on the cost/traffic trade-off curve for `cgnn-perf` to price. The
/// arithmetic is bit-identical to N-A2A (same payloads, same neighbour
/// accumulation order).
#[derive(Debug, Clone)]
pub struct CoalescedAllGather {
    /// `offsets[ni]`: node offset of **our** block inside neighbour `ni`'s
    /// fused buffer (multiply by `cols` at exchange time).
    offsets: Vec<usize>,
}

impl CoalescedAllGather {
    /// Collective constructor: every rank publishes, for each of its
    /// neighbours, the node offset of that neighbour's block within its own
    /// fused buffer; each rank keeps the entries addressed to itself.
    pub fn prepare(comm: &Comm, graph: &LocalGraph) -> Self {
        // Flat (neighbour, node-offset) pairs describing *our* fused layout.
        let mut table = Vec::with_capacity(2 * graph.halo.neighbors.len());
        for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
            table.push(s as f64);
            table.push(graph.halo.halo_offset(ni) as f64);
        }
        let tables = comm.all_gather(table);
        let offsets = graph
            .halo
            .neighbors
            .iter()
            .map(|&s| {
                tables[s]
                    .chunks_exact(2)
                    .find(|pair| pair[0] as usize == comm.rank())
                    .map(|pair| pair[1] as usize)
                    .expect("neighbour table misses this rank: halo plan asymmetric")
            })
            .collect();
        CoalescedAllGather { offsets }
    }
}

impl HaloExchange for CoalescedAllGather {
    fn label(&self) -> &'static str {
        HaloExchangeMode::Coalesced.label()
    }

    fn is_consistent(&self) -> bool {
        true
    }

    fn exchange(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Tensor {
        let mut out = a.clone();
        let cols = a.cols();
        // One fused allocation for every neighbour's payload, in neighbour
        // order (matching `HaloPlan::halo_offset`).
        // detlint: allow(hotpath-reachability, "owned-Vec wire contract: the comm API takes each message by value, so a fresh send buffer per call is the protocol; pooled reuse needs the compressed-wire API tracked in ROADMAP")
        let mut fused = Vec::with_capacity(graph.halo.halo_count() * cols);
        for ni in 0..graph.halo.neighbors.len() {
            pack_neighbor(&mut fused, a, graph, ni);
        }
        let gathered = comm.all_gather(fused);
        accumulate_halos(&mut out, graph, cols, |ni, s| {
            let start = self.offsets[ni] * cols;
            let len = graph.halo.send_ids[ni].len() * cols;
            &gathered[s][start..start + len]
        });
        out
    }

    fn traffic_per_exchange(&self, g: &LocalGraph, world: usize, cols: usize) -> ExchangeTraffic {
        // The fused buffer is replicated to every other rank.
        let peers = world.saturating_sub(1) as u64;
        ExchangeTraffic {
            messages: if g.halo.halo_count() > 0 { peers } else { 0 },
            bytes: peers * (g.halo.halo_count() * cols * std::mem::size_of::<f64>()) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_comm::World;
    use cgnn_graph::build_distributed_graph;
    use cgnn_mesh::BoxMesh;
    use cgnn_partition::{Partition, Strategy};

    /// After an exchange, every coincident copy of a node must hold the sum
    /// of all pre-exchange copies — identically across ranks and modes.
    fn check_mode(mode: HaloExchangeMode) {
        let mesh = BoxMesh::new((4, 4, 4), 2, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 8, Strategy::Block);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));

        let results = World::run(8, |comm| {
            let g = &graphs[comm.rank()];
            let ctx = HaloContext::new(comm.clone(), g, mode);
            // a[i] = gid + rank * 1e-3 so copies differ per rank.
            let a = Tensor::from_fn(g.n_local(), 2, |r, c| {
                g.gids[r] as f64 + comm.rank() as f64 * 1e-3 + c as f64 * 10.0
            });
            let out = halo_exchange_apply(&a, g, &ctx);
            (g.gids.clone(), a, out)
        });

        // Reference: per gid, the sum over ranks holding it.
        let mut sums: std::collections::HashMap<u64, [f64; 2]> = Default::default();
        for (gids, a, _) in &results {
            for (r, &gid) in gids.iter().enumerate() {
                let e = sums.entry(gid).or_insert([0.0, 0.0]);
                e[0] += a.get(r, 0);
                e[1] += a.get(r, 1);
            }
        }
        for (gids, a, out) in &results {
            for (r, &gid) in gids.iter().enumerate() {
                let copies = graphs
                    .iter()
                    .filter(|g| g.local_of_gid(gid).is_some())
                    .count();
                for c in 0..2 {
                    let expect = if copies > 1 {
                        sums[&gid][c]
                    } else {
                        a.get(r, c)
                    };
                    assert!(
                        (out.get(r, c) - expect).abs() < 1e-12,
                        "mode {mode:?} gid {gid} col {c}: {} vs {}",
                        out.get(r, c),
                        expect
                    );
                }
            }
        }
    }

    #[test]
    fn a2a_synchronizes_coincident_nodes() {
        check_mode(HaloExchangeMode::AllToAll);
    }

    #[test]
    fn neighbor_a2a_synchronizes_coincident_nodes() {
        check_mode(HaloExchangeMode::NeighborAllToAll);
    }

    #[test]
    fn send_recv_synchronizes_coincident_nodes() {
        check_mode(HaloExchangeMode::SendRecv);
    }

    #[test]
    fn coalesced_synchronizes_coincident_nodes() {
        check_mode(HaloExchangeMode::Coalesced);
    }

    #[test]
    fn overlapped_synchronizes_coincident_nodes() {
        check_mode(HaloExchangeMode::Overlapped);
    }

    /// The overlapped exchange reorders the schedule (post-all, then wait),
    /// not the arithmetic: its output must be bit-identical to Send-Recv,
    /// and its non-blocking traffic must be fully drained (send totals ==
    /// recv totals) with symmetric per-rank accounting.
    #[test]
    fn overlapped_is_bit_identical_to_send_recv_and_drains_traffic() {
        let mesh = BoxMesh::new((4, 4, 4), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 8, Strategy::Block);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let stats = World::run(8, |comm| {
            let g = &graphs[comm.rank()];
            let a = Tensor::from_fn(g.n_local(), 3, |r, c| {
                (g.gids[r] as f64 * 0.17).sin() + c as f64 + comm.rank() as f64 * 1e-3
            });
            let sr = {
                let ctx = HaloContext::new(comm.clone(), g, HaloExchangeMode::SendRecv);
                halo_exchange_apply(&a, g, &ctx)
            };
            let ctx = HaloContext::new(comm.clone(), g, HaloExchangeMode::Overlapped);
            comm.stats_reset();
            let ovl = halo_exchange_apply(&a, g, &ctx);
            assert_eq!(ovl, sr, "overlapped must match Send-Recv bit for bit");
            comm.stats_snapshot()
        });
        let sends: u64 = stats.iter().map(|s| s.sends).sum();
        let recvs: u64 = stats.iter().map(|s| s.recvs).sum();
        assert!(sends > 0, "overlapped exchange must go through isend");
        assert_eq!(sends, recvs, "all posted irecvs completed");
        for s in &stats {
            // The halo plan is symmetric, so each rank receives exactly what
            // it sends.
            assert_eq!(s.sends, s.recvs);
            assert_eq!(s.send_bytes, s.recv_bytes);
            assert_eq!(s.a2a_messages, 0, "no collectives in the overlapped path");
            assert_eq!(s.all_gathers, 0);
        }
    }

    #[test]
    fn none_mode_is_identity() {
        let mesh = BoxMesh::new((2, 2, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        World::run(2, |comm| {
            let g = &graphs[comm.rank()];
            let ctx = HaloContext::new(comm.clone(), g, HaloExchangeMode::None);
            let a = Tensor::from_fn(g.n_local(), 3, |r, c| (r * 3 + c) as f64);
            let out = halo_exchange_apply(&a, g, &ctx);
            assert_eq!(out, a);
        });
    }

    #[test]
    fn mode_display_matches_label() {
        for mode in HaloExchangeMode::all() {
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(HaloExchangeMode::Coalesced.to_string(), "Coal-AG");
    }

    #[test]
    fn a2a_sends_dummy_traffic_but_na2a_does_not() {
        let mesh = BoxMesh::new((4, 2, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 4, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let stats = World::run(4, |comm| {
            let g = &graphs[comm.rank()];
            for mode in [
                HaloExchangeMode::AllToAll,
                HaloExchangeMode::NeighborAllToAll,
            ] {
                let ctx = HaloContext::new(comm.clone(), g, mode);
                comm.stats_reset();
                let a = Tensor::from_fn(g.n_local(), 4, |_, _| 1.0);
                let _ = halo_exchange_apply(&a, g, &ctx);
                let s = comm.stats_snapshot();
                if mode == HaloExchangeMode::AllToAll {
                    assert_eq!(
                        s.a2a_messages as usize,
                        comm.size() - 1,
                        "A2A talks to everyone"
                    );
                } else {
                    assert_eq!(
                        s.a2a_messages as usize,
                        g.halo.neighbors.len(),
                        "N-A2A talks to neighbours only"
                    );
                }
            }
            comm.stats_snapshot()
        });
        drop(stats);
    }

    /// The trait's predicted traffic matches what the communicator measures,
    /// for every strategy.
    #[test]
    fn predicted_traffic_matches_measured() {
        let mesh = BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 4, Strategy::Pencil);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let cols = 5;
        for mode in HaloExchangeMode::all() {
            let graphs = Arc::clone(&graphs);
            World::run(4, move |comm| {
                let g = &graphs[comm.rank()];
                let ctx = HaloContext::new(comm.clone(), g, mode);
                comm.stats_reset();
                let a = Tensor::from_fn(g.n_local(), cols, |r, c| (r + c) as f64);
                let _ = halo_exchange_apply(&a, g, &ctx);
                let s = comm.stats_snapshot();
                let predicted = ctx.strategy().traffic_per_exchange(g, comm.size(), cols);
                let measured = ExchangeTraffic {
                    messages: s.a2a_messages + s.sends + s.all_gathers * (comm.size() as u64 - 1),
                    bytes: s.a2a_bytes + s.send_bytes + s.all_gather_bytes,
                };
                assert_eq!(predicted, measured, "mode {mode} traffic mismatch");
                // Point-to-point accounting is symmetric: every send this
                // rank injected was drained by a matching receive.
                assert_eq!(s.sends, s.recvs, "mode {mode}: sends != recvs");
                assert_eq!(
                    s.send_bytes, s.recv_bytes,
                    "mode {mode}: send bytes != recv bytes"
                );
            });
        }
    }

    #[test]
    fn coalesced_uses_one_collective_per_exchange() {
        let mesh = BoxMesh::new((4, 4, 4), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 8, Strategy::Block);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        World::run(8, |comm| {
            let g = &graphs[comm.rank()];
            let ctx = HaloContext::new(comm.clone(), g, HaloExchangeMode::Coalesced);
            comm.stats_reset();
            let a = Tensor::from_fn(g.n_local(), 3, |r, _| r as f64);
            let _ = halo_exchange_apply(&a, g, &ctx);
            let s = comm.stats_snapshot();
            assert_eq!(s.all_gathers, 1, "one fused collective");
            assert_eq!(s.a2a_messages, 0);
            assert_eq!(s.sends, 0);
        });
    }

    #[test]
    fn exchange_is_self_adjoint() {
        // <H a, b> == <a, H b> summed over all ranks with 1/d weights...
        // directly: the global operator matrix is symmetric, so applying H
        // twice equals applying H to H (trivially) — instead verify
        // <Ha, b>_global == <a, Hb>_global where the global inner product
        // double-counts shared nodes equally on both sides.
        let mesh = BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 4, Strategy::Pencil);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let inner = World::run(4, |comm| {
            let g = &graphs[comm.rank()];
            let ctx = HaloContext::new(comm.clone(), g, HaloExchangeMode::NeighborAllToAll);
            let a = Tensor::from_fn(g.n_local(), 1, |r, _| (g.gids[r] as f64 * 0.37).sin());
            let b = Tensor::from_fn(g.n_local(), 1, |r, _| {
                (g.gids[r] as f64 * 0.11).cos() + comm.rank() as f64 * 0.01
            });
            let ha = halo_exchange_apply(&a, g, &ctx);
            let hb = halo_exchange_apply(&b, g, &ctx);
            let dot = |x: &Tensor, y: &Tensor| -> f64 {
                (0..g.n_local()).map(|r| x.get(r, 0) * y.get(r, 0)).sum()
            };
            (dot(&ha, &b), dot(&a, &hb))
        });
        let lhs: f64 = inner.iter().map(|&(l, _)| l).sum();
        let rhs: f64 = inner.iter().map(|&(_, r)| r).sum();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    /// A custom strategy plugged in through `with_strategy` — the extension
    /// point the trait exists for. This one wraps N-A2A and counts calls.
    #[test]
    fn custom_strategy_via_with_strategy() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct Counting {
            inner: NeighborAllToAll,
            calls: AtomicU64,
        }
        impl HaloExchange for Counting {
            fn label(&self) -> &'static str {
                "counting"
            }
            fn is_consistent(&self) -> bool {
                true
            }
            fn exchange(&self, a: &Tensor, graph: &LocalGraph, comm: &Comm) -> Tensor {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.exchange(a, graph, comm)
            }
        }

        let mesh = BoxMesh::new((2, 2, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let calls = World::run(2, |comm| {
            let g = &graphs[comm.rank()];
            let strategy = Arc::new(Counting {
                inner: NeighborAllToAll,
                calls: AtomicU64::new(0),
            });
            let ctx = HaloContext::with_strategy(comm.clone(), strategy.clone());
            assert_eq!(ctx.label(), "counting");
            let a = Tensor::from_fn(g.n_local(), 2, |r, c| (r * 2 + c) as f64);
            let reference = {
                let na2a = HaloContext::new(comm.clone(), g, HaloExchangeMode::NeighborAllToAll);
                halo_exchange_apply(&a, g, &na2a)
            };
            let out = halo_exchange_apply(&a, g, &ctx);
            assert_eq!(out, reference, "wrapper must not change arithmetic");
            strategy.calls.load(Ordering::Relaxed)
        });
        assert_eq!(calls, vec![1, 1]);
    }
}
