//! Halo exchange implementations (paper Sec. III).
//!
//! The paper compares four ways of realizing the differentiable halo swap
//! of Eq. 4c-d:
//!
//! * **None** — skip the exchange entirely: the *inconsistent* baseline
//!   ("standard NMP") used to isolate communication costs,
//! * **A2A** — dense `all_to_all` with equal-sized buffers to *every* rank,
//!   dummy traffic included (the naive baseline),
//! * **N-A2A** — the same `all_to_all` but with empty buffers for
//!   non-neighbour ranks, which collective libraries turn into neighbour
//!   send/receives (the paper's efficient variant),
//! * **Send-Recv** — explicit point-to-point sends and receives.
//!
//! All four produce identical arithmetic when they exchange at all; they
//! differ only in traffic, which [`cgnn_comm`] records and `cgnn-perf`
//! prices.

use cgnn_comm::Comm;
use cgnn_graph::LocalGraph;
use cgnn_tensor::Tensor;

/// Which halo exchange implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaloExchangeMode {
    /// No exchange: inconsistent "standard" message passing.
    None,
    /// Dense all-to-all with uniform (padded) buffers.
    AllToAll,
    /// All-to-all with empty buffers for non-neighbours.
    NeighborAllToAll,
    /// Explicit point-to-point sends/receives between neighbours.
    SendRecv,
}

impl HaloExchangeMode {
    /// Short label used in experiment output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            HaloExchangeMode::None => "none",
            HaloExchangeMode::AllToAll => "A2A",
            HaloExchangeMode::NeighborAllToAll => "N-A2A",
            HaloExchangeMode::SendRecv => "Send-Recv",
        }
    }

    /// Whether this mode actually synchronizes halos (i.e. is consistent).
    pub fn is_consistent(self) -> bool {
        !matches!(self, HaloExchangeMode::None)
    }
}

/// Per-rank context for halo exchanges: the communicator, the chosen mode,
/// and the globally-uniform buffer length needed by the dense A2A mode.
///
/// Construction is a collective operation (it all-reduces the maximum
/// shared-node count), so every rank must build it at the same point.
#[derive(Clone)]
pub struct HaloContext {
    pub comm: Comm,
    pub mode: HaloExchangeMode,
    /// Maximum number of shared nodes with any single neighbour, over all
    /// rank pairs in the world — the A2A padding unit.
    pub max_shared: usize,
}

impl HaloContext {
    /// Collective constructor; call on every rank with its own `graph`.
    pub fn new(comm: Comm, graph: &LocalGraph, mode: HaloExchangeMode) -> Self {
        let local_max = graph.halo.send_ids.iter().map(Vec::len).max().unwrap_or(0) as f64;
        let mut buf = [local_max];
        comm.all_reduce_max(&mut buf);
        HaloContext {
            comm,
            mode,
            max_shared: buf[0] as usize,
        }
    }

    /// Non-collective constructor for single-rank (R = 1) use.
    pub fn single(comm: Comm) -> Self {
        assert_eq!(comm.size(), 1, "single() is only for R = 1 worlds");
        HaloContext {
            comm,
            mode: HaloExchangeMode::None,
            max_shared: 0,
        }
    }
}

/// Tag for point-to-point halo traffic.
const HALO_TAG: u32 = 0x4841;

/// Execute one halo swap + synchronization (paper Eqs. 4c-4d) on a raw
/// node-row tensor: returns `a*` where
/// `a*[i] = a[i] + sum over neighbour copies of a[i']` for shared nodes,
/// and `a*[i] = a[i]` for interior nodes.
///
/// The operation is its own adjoint (the global operator `I + sum of swaps`
/// is symmetric), which is exactly why the backward pass of the
/// differentiable halo exchange is another halo exchange — see
/// [`crate::mp_layer::HaloSyncOp`].
pub fn halo_exchange_apply(a: &Tensor, graph: &LocalGraph, ctx: &HaloContext) -> Tensor {
    let mut out = a.clone();
    let cols = a.cols();
    debug_assert_eq!(
        a.rows(),
        graph.n_local(),
        "halo exchange expects local rows only"
    );
    match ctx.mode {
        HaloExchangeMode::None => out,
        HaloExchangeMode::AllToAll | HaloExchangeMode::NeighborAllToAll => {
            let world = ctx.comm.size();
            let uniform_len = ctx.max_shared * cols;
            let mut send: Vec<Vec<f64>> = vec![Vec::new(); world];
            for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
                let ids = &graph.halo.send_ids[ni];
                let mut buf = Vec::with_capacity(if ctx.mode == HaloExchangeMode::AllToAll {
                    uniform_len
                } else {
                    ids.len() * cols
                });
                for &lid in ids {
                    buf.extend_from_slice(a.row(lid));
                }
                if ctx.mode == HaloExchangeMode::AllToAll {
                    buf.resize(uniform_len, 0.0);
                }
                send[s] = buf;
            }
            if ctx.mode == HaloExchangeMode::AllToAll {
                // Dummy full-size buffers to non-neighbours (the paper's
                // "equal-sized buffers regardless of whether communication
                // is needed").
                for (dst, buf) in send.iter_mut().enumerate() {
                    if dst != ctx.comm.rank() && buf.is_empty() {
                        *buf = vec![0.0; uniform_len];
                    }
                }
            }
            let recv = ctx.comm.all_to_all(send);
            accumulate_halos(&mut out, graph, cols, |s| recv[s].as_slice());
            out
        }
        HaloExchangeMode::SendRecv => {
            for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
                let ids = &graph.halo.send_ids[ni];
                let mut buf = Vec::with_capacity(ids.len() * cols);
                for &lid in ids {
                    buf.extend_from_slice(a.row(lid));
                }
                ctx.comm.send(s, HALO_TAG, buf);
            }
            let recvs: Vec<Vec<f64>> = graph
                .halo
                .neighbors
                .iter()
                .map(|&s| ctx.comm.recv(s, HALO_TAG))
                .collect();
            let by_rank = |s: usize| {
                let ni = graph
                    .halo
                    .neighbors
                    .iter()
                    .position(|&n| n == s)
                    .expect("receive from non-neighbour");
                recvs[ni].as_slice()
            };
            accumulate_halos(&mut out, graph, cols, by_rank);
            out
        }
    }
}

/// Synchronization step (Eq. 4d): add each neighbour's buffered aggregates
/// into the owner rows. `recv_of(s)` yields the payload received from rank
/// `s`, laid out as `shared_count x cols` in ascending-gid order.
fn accumulate_halos<'a>(
    out: &mut Tensor,
    graph: &LocalGraph,
    cols: usize,
    recv_of: impl Fn(usize) -> &'a [f64],
) {
    for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
        let ids = &graph.halo.send_ids[ni];
        let buf = recv_of(s);
        assert!(
            buf.len() >= ids.len() * cols,
            "halo payload from rank {s} too short: {} < {}",
            buf.len(),
            ids.len() * cols
        );
        for (k, &lid) in ids.iter().enumerate() {
            let src = &buf[k * cols..(k + 1) * cols];
            for (o, &v) in out.row_mut(lid).iter_mut().zip(src.iter()) {
                *o += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_comm::World;
    use cgnn_graph::build_distributed_graph;
    use cgnn_mesh::BoxMesh;
    use cgnn_partition::{Partition, Strategy};
    use std::sync::Arc;

    /// After an exchange, every coincident copy of a node must hold the sum
    /// of all pre-exchange copies — identically across ranks and modes.
    fn check_mode(mode: HaloExchangeMode) {
        let mesh = BoxMesh::new((4, 4, 4), 2, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 8, Strategy::Block);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));

        let results = World::run(8, |comm| {
            let g = &graphs[comm.rank()];
            let ctx = HaloContext::new(comm.clone(), g, mode);
            // a[i] = gid + rank * 1e-3 so copies differ per rank.
            let a = Tensor::from_fn(g.n_local(), 2, |r, c| {
                g.gids[r] as f64 + comm.rank() as f64 * 1e-3 + c as f64 * 10.0
            });
            let out = halo_exchange_apply(&a, g, &ctx);
            (g.gids.clone(), a, out)
        });

        // Reference: per gid, the sum over ranks holding it.
        let mut sums: std::collections::HashMap<u64, [f64; 2]> = Default::default();
        for (gids, a, _) in &results {
            for (r, &gid) in gids.iter().enumerate() {
                let e = sums.entry(gid).or_insert([0.0, 0.0]);
                e[0] += a.get(r, 0);
                e[1] += a.get(r, 1);
            }
        }
        for (gids, a, out) in &results {
            for (r, &gid) in gids.iter().enumerate() {
                let copies = graphs
                    .iter()
                    .filter(|g| g.local_of_gid(gid).is_some())
                    .count();
                for c in 0..2 {
                    let expect = if copies > 1 {
                        sums[&gid][c]
                    } else {
                        a.get(r, c)
                    };
                    assert!(
                        (out.get(r, c) - expect).abs() < 1e-12,
                        "mode {mode:?} gid {gid} col {c}: {} vs {}",
                        out.get(r, c),
                        expect
                    );
                }
            }
        }
    }

    #[test]
    fn a2a_synchronizes_coincident_nodes() {
        check_mode(HaloExchangeMode::AllToAll);
    }

    #[test]
    fn neighbor_a2a_synchronizes_coincident_nodes() {
        check_mode(HaloExchangeMode::NeighborAllToAll);
    }

    #[test]
    fn send_recv_synchronizes_coincident_nodes() {
        check_mode(HaloExchangeMode::SendRecv);
    }

    #[test]
    fn none_mode_is_identity() {
        let mesh = BoxMesh::new((2, 2, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        World::run(2, |comm| {
            let g = &graphs[comm.rank()];
            let ctx = HaloContext::new(comm.clone(), g, HaloExchangeMode::None);
            let a = Tensor::from_fn(g.n_local(), 3, |r, c| (r * 3 + c) as f64);
            let out = halo_exchange_apply(&a, g, &ctx);
            assert_eq!(out, a);
        });
    }

    #[test]
    fn a2a_sends_dummy_traffic_but_na2a_does_not() {
        let mesh = BoxMesh::new((4, 2, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 4, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let stats = World::run(4, |comm| {
            let g = &graphs[comm.rank()];
            for mode in [
                HaloExchangeMode::AllToAll,
                HaloExchangeMode::NeighborAllToAll,
            ] {
                let ctx = HaloContext::new(comm.clone(), g, mode);
                comm.stats_reset();
                let a = Tensor::from_fn(g.n_local(), 4, |_, _| 1.0);
                let _ = halo_exchange_apply(&a, g, &ctx);
                let s = comm.stats_snapshot();
                if mode == HaloExchangeMode::AllToAll {
                    assert_eq!(
                        s.a2a_messages as usize,
                        comm.size() - 1,
                        "A2A talks to everyone"
                    );
                } else {
                    assert_eq!(
                        s.a2a_messages as usize,
                        g.halo.neighbors.len(),
                        "N-A2A talks to neighbours only"
                    );
                }
            }
            comm.stats_snapshot()
        });
        drop(stats);
    }

    #[test]
    fn exchange_is_self_adjoint() {
        // <H a, b> == <a, H b> summed over all ranks with 1/d weights...
        // directly: the global operator matrix is symmetric, so applying H
        // twice equals applying H to H (trivially) — instead verify
        // <Ha, b>_global == <a, Hb>_global where the global inner product
        // double-counts shared nodes equally on both sides.
        let mesh = BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 4, Strategy::Pencil);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let inner = World::run(4, |comm| {
            let g = &graphs[comm.rank()];
            let ctx = HaloContext::new(comm.clone(), g, HaloExchangeMode::NeighborAllToAll);
            let a = Tensor::from_fn(g.n_local(), 1, |r, _| (g.gids[r] as f64 * 0.37).sin());
            let b = Tensor::from_fn(g.n_local(), 1, |r, _| {
                (g.gids[r] as f64 * 0.11).cos() + comm.rank() as f64 * 0.01
            });
            let ha = halo_exchange_apply(&a, g, &ctx);
            let hb = halo_exchange_apply(&b, g, &ctx);
            let dot = |x: &Tensor, y: &Tensor| -> f64 {
                (0..g.n_local()).map(|r| x.get(r, 0) * y.get(r, 0)).sum()
            };
            (dot(&ha, &b), dot(&a, &hb))
        });
        let lhs: f64 = inner.iter().map(|&(l, _)| l).sum();
        let rhs: f64 = inner.iter().map(|&(_, r)| r).sum();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }
}
