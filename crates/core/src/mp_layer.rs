//! The consistent neural message passing layer (paper Eq. 4).
//!
//! Stages, per rank `r`:
//!
//! 1. edge update `e_ij <- MLP(x_i, x_j, e_ij)` (+ residual),
//! 2. local edge aggregation `a_i = sum_{j in N(i)} e_ij / d_ij`,
//! 3. **differentiable halo swap** of the aggregates (Eq. 4c),
//! 4. synchronization `a*_i = sum over coincident copies` (Eq. 4d),
//! 5. node update `x_i <- MLP(a*_i, x_i)` (+ residual).
//!
//! Steps 3-4 are one fused [`HaloSyncOp`] recorded on the tape; its backward
//! is the same exchange applied to the adjoints (the operator is globally
//! symmetric), which is what makes Eq. 3 — gradient consistency — hold.

use std::sync::Arc;

use cgnn_graph::LocalGraph;
use cgnn_tensor::nn::{BoundParams, Mlp, ParamSet};
use cgnn_tensor::tape::CustomOp;
use cgnn_tensor::{Tape, Tensor, VarId};
use rand::Rng;

use crate::exchange::{halo_exchange_apply, HaloContext};

/// Shared, per-pass-immutable index buffers of one rank's local graph.
#[derive(Clone)]
pub struct GraphIndices {
    /// Source node of each directed edge.
    pub src: Arc<Vec<usize>>,
    /// Destination node of each directed edge.
    pub dst: Arc<Vec<usize>>,
    /// Per-edge `1/d_ij` consistency weights (paper Eq. 4).
    pub edge_inv_degree: Arc<Vec<f64>>,
    /// Per-node `1/d_i` consistency weights (paper Eq. 6).
    pub node_inv_degree: Arc<Vec<f64>>,
    /// Number of locally owned nodes.
    pub n_local: usize,
}

impl GraphIndices {
    /// Share the index buffers of `g`. The buffers live `Arc`-shared on
    /// [`LocalGraph`] itself, so this is a handful of reference-count bumps
    /// — every message-passing layer (and every training step) reuses the
    /// same allocations.
    pub fn from_graph(g: &LocalGraph) -> Self {
        GraphIndices {
            src: Arc::clone(&g.edge_src),
            dst: Arc::clone(&g.edge_dst),
            edge_inv_degree: Arc::clone(&g.edge_inv_degree),
            node_inv_degree: Arc::clone(&g.node_inv_degree),
            n_local: g.n_local(),
        }
    }
}

/// Cumulative per-thread (= per-rank) timers of the overlapped forward:
/// how long the interior-node MLP ran inside the post→wait window, and how
/// long the completion wait took afterwards. The `hotpath` bench derives
/// the *exchange-hidden fraction* `window / (window + wait)` from these.
pub mod overlap_stats {
    use std::cell::Cell;

    thread_local! {
        static WINDOW_NS: Cell<u64> = const { Cell::new(0) };
        static WAIT_NS: Cell<u64> = const { Cell::new(0) };
        static WINDOWS: Cell<u64> = const { Cell::new(0) };
    }

    /// One rank's accumulated overlap timing.
    #[derive(Debug, Clone, Copy, Default, PartialEq)]
    pub struct OverlapWindow {
        /// Nanoseconds of interior-node compute executed inside open
        /// post→wait windows.
        pub window_ns: u64,
        /// Nanoseconds spent completing receives after the window closed.
        pub wait_ns: u64,
        /// Number of overlap windows opened.
        pub windows: u64,
    }

    impl OverlapWindow {
        /// Fraction of the exchange latency hidden behind compute:
        /// `window / (window + wait)`; zero when no window ever opened.
        pub fn hidden_fraction(&self) -> f64 {
            let total = self.window_ns + self.wait_ns;
            if total == 0 {
                0.0
            } else {
                self.window_ns as f64 / total as f64
            }
        }
    }

    /// Zero this thread's counters.
    pub fn reset() {
        WINDOW_NS.with(|c| c.set(0));
        WAIT_NS.with(|c| c.set(0));
        WINDOWS.with(|c| c.set(0));
    }

    /// Snapshot this thread's counters.
    pub fn snapshot() -> OverlapWindow {
        OverlapWindow {
            window_ns: WINDOW_NS.with(Cell::get),
            wait_ns: WAIT_NS.with(Cell::get),
            windows: WINDOWS.with(Cell::get),
        }
    }

    pub(crate) fn record(window_ns: u64, wait_ns: u64) {
        WINDOW_NS.with(|c| c.set(c.get() + window_ns));
        WAIT_NS.with(|c| c.set(c.get() + wait_ns));
        WINDOWS.with(|c| c.set(c.get() + 1));
    }
}

/// Differentiable halo swap + synchronization as a tape op.
///
/// Forward: `a* = H a` where `H = I + sum of neighbour swaps`.
/// Backward: `da = H^T da* = H da*` — the same exchange on the adjoints,
/// mirroring `torch.distributed.nn`'s differentiable collectives.
pub struct HaloSyncOp {
    graph: Arc<LocalGraph>,
    ctx: HaloContext,
}

impl CustomOp for HaloSyncOp {
    fn name(&self) -> &'static str {
        "halo_sync"
    }

    fn backward(&self, grad_out: &Tensor, _inputs: &[&Tensor]) -> Vec<Option<Tensor>> {
        // detlint: allow(hotpath-alloc, "one 1-element Vec per halo-sync backward, amortized over the whole layer's gradient work")
        vec![Some(halo_exchange_apply(grad_out, &self.graph, &self.ctx))]
    }
}

/// Record a halo-sync node with an already-computed `a*` value — shared by
/// the blocking and the overlapped (split-phase) schedules, so both paths
/// always record the identical gradient graph.
fn record_halo_sync(
    tape: &mut Tape,
    a: VarId,
    value: Tensor,
    graph: &Arc<LocalGraph>,
    ctx: &HaloContext,
) -> VarId {
    tape.custom(
        // detlint: allow(hotpath-alloc, "1-element parent list per halo-sync record; the tape API takes an owned Vec")
        vec![a],
        value,
        Box::new(HaloSyncOp {
            graph: Arc::clone(graph),
            ctx: ctx.clone(),
        }),
    )
}

/// Record the halo sync on the tape (performs the forward exchange).
pub fn halo_sync(tape: &mut Tape, a: VarId, graph: &Arc<LocalGraph>, ctx: &HaloContext) -> VarId {
    if !ctx.is_consistent() || ctx.comm.size() == 1 {
        // Identity; nothing to record.
        return a;
    }
    let value = halo_exchange_apply(tape.value(a), graph, ctx);
    record_halo_sync(tape, a, value, graph, ctx)
}

/// One consistent neural message passing layer.
#[derive(Debug, Clone)]
pub struct ConsistentMpLayer {
    /// The edge-update MLP (paper Eq. 4, first line).
    pub edge_mlp: Mlp,
    /// The node-update MLP (paper Eq. 4, second line).
    pub node_mlp: Mlp,
}

impl ConsistentMpLayer {
    /// Build a layer with hidden width `hidden` and `mlp_hidden` interior
    /// MLP layers. Edge MLP input is `(x_i, x_j, e_ij)` (3 x hidden); node
    /// MLP input is `(a*_i, x_i)` (2 x hidden).
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        hidden: usize,
        mlp_hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        ConsistentMpLayer {
            edge_mlp: Mlp::new(
                params,
                &format!("{name}.edge"),
                3 * hidden,
                hidden,
                hidden,
                mlp_hidden,
                true,
                rng,
            ),
            node_mlp: Mlp::new(
                params,
                &format!("{name}.node"),
                2 * hidden,
                hidden,
                hidden,
                mlp_hidden,
                true,
                rng,
            ),
        }
    }

    /// Forward pass; returns `(x_new, e_new)`.
    ///
    /// When the exchange strategy supports split-phase posting
    /// ([`crate::exchange::HaloExchange::begin`], i.e. `Ovl-SR`), stages
    /// (3)–(5) are restructured for **true compute/communication overlap**:
    /// the node MLP of the *interior* rows (which the exchange cannot
    /// touch) executes between posting the isends/irecvs and waiting on
    /// them, and only the *boundary* rows wait for the halos. Every kernel
    /// involved is row-local, so the reassembled output is bit-identical
    /// to the blocking Send-Recv schedule.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        tape: &mut Tape,
        bound: &BoundParams,
        x: VarId,
        e: VarId,
        graph: &Arc<LocalGraph>,
        idx: &GraphIndices,
        ctx: &HaloContext,
    ) -> (VarId, VarId) {
        // (1) Edge update with residual (Eq. 4a); the gather→concat
        // prologue `[x_i | x_j | e]` is one fused kernel.
        let cat = tape.gather_concat(&[
            (x, Some(idx.src.clone())),
            (x, Some(idx.dst.clone())),
            (e, None),
        ]);
        let e_upd = self.edge_mlp.forward(tape, bound, cat);
        let e_new = tape.add(e_upd, e);

        // (2) Degree-weighted local aggregation at the receiver (Eq. 4b).
        let scaled = tape.row_scale(e_new, idx.edge_inv_degree.clone());
        let a = tape.scatter_add_rows(scaled, idx.dst.clone(), idx.n_local);

        // (3)+(4)+(5): halo swap, synchronization, node update.
        let x_upd = self.node_update(tape, bound, x, a, graph, ctx);
        let x_new = tape.add(x_upd, x);
        (x_new, e_new)
    }

    /// Stages (3)–(5): exchange the aggregates and run the node MLP,
    /// overlapping interior compute with the exchange when the strategy
    /// exposes a split-phase window.
    fn node_update(
        &self,
        tape: &mut Tape,
        bound: &BoundParams,
        x: VarId,
        a: VarId,
        graph: &Arc<LocalGraph>,
        ctx: &HaloContext,
    ) -> VarId {
        let exchanging = ctx.is_consistent() && ctx.comm.size() > 1;
        if exchanging {
            if let Some(pending) = ctx.strategy().begin(tape.value(a), graph, &ctx.comm) {
                return self.overlapped_node_update(tape, bound, x, a, graph, ctx, pending);
            }
        }
        // Blocking path: full exchange, then the node MLP on all rows.
        let a_star = halo_sync(tape, a, graph, ctx);
        let cat = tape.gather_concat(&[(a_star, None), (x, None)]);
        self.node_mlp.forward(tape, bound, cat)
    }

    /// The overlapped schedule: isends/irecvs are already posted. The
    /// node-MLP chain is recorded **monolithically** under a tape row mask:
    /// interior rows (which the exchange cannot touch) are computed inside
    /// the post→wait window, boundary rows are backfilled after the halos
    /// arrive. The recorded ops, their final values, and therefore the
    /// entire backward pass are bit-identical to the blocking Send-Recv
    /// schedule — only the execution order differs.
    #[allow(clippy::too_many_arguments)]
    fn overlapped_node_update(
        &self,
        tape: &mut Tape,
        bound: &BoundParams,
        x: VarId,
        a: VarId,
        graph: &Arc<LocalGraph>,
        ctx: &HaloContext,
        pending: crate::exchange::PendingExchange,
    ) -> VarId {
        // Record the differentiable sync node now; its interior rows are
        // already final (the exchange only adds into boundary rows), the
        // boundary rows complete when the window closes.
        let a_star_val = tape.value_copy(a);
        let a_star = record_halo_sync(tape, a, a_star_val, graph, ctx);

        // --- Overlap window: interior-node MLP while halos are in flight.
        let t_window = std::time::Instant::now();
        tape.begin_row_mask(Arc::clone(&graph.interior_rows));
        let cat = tape.gather_concat(&[(a_star, None), (x, None)]);
        let x_upd = self.node_mlp.forward(tape, bound, cat);
        let window_ns = t_window.elapsed().as_nanos() as u64;

        // --- Close the window: wait + accumulate halos (Eq. 4d) into the
        // sync node's boundary rows, then backfill those rows through the
        // recorded chain.
        let t_wait = std::time::Instant::now();
        pending.finish(tape.value_mut(a_star), graph);
        overlap_stats::record(window_ns, t_wait.elapsed().as_nanos() as u64);
        tape.end_row_mask(&graph.boundary_rows);
        x_upd
    }

    /// Total trainable scalars in this layer's two MLPs.
    pub fn num_scalars(&self) -> usize {
        self.edge_mlp.num_scalars() + self.node_mlp.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::HaloExchangeMode;
    use cgnn_comm::World;
    use cgnn_graph::{build_distributed_graph, build_global_graph};
    use cgnn_mesh::BoxMesh;
    use cgnn_partition::{Partition, Strategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A single consistent MP layer evaluated on R=2 must reproduce the R=1
    /// result node-for-node (paper Eq. 2 at layer granularity).
    #[test]
    fn layer_output_is_partition_invariant() {
        let mesh = BoxMesh::new((2, 2, 2), 2, (1.0, 1.0, 1.0), false);
        let global = Arc::new(build_global_graph(&mesh));
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs: Vec<Arc<LocalGraph>> = build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect();
        let hidden = 4;

        // Identical parameters everywhere.
        let build = || {
            let mut params = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(99);
            let layer = ConsistentMpLayer::new(&mut params, "mp", hidden, 1, &mut rng);
            (params, layer)
        };

        // Node/edge features as deterministic functions of gid.
        let feats = |g: &LocalGraph| {
            let x = Tensor::from_fn(g.n_local(), hidden, |r, c| {
                ((g.gids[r] as f64 + 1.3 * c as f64) * 0.21).sin()
            });
            let e = Tensor::from_fn(g.n_edges(), hidden, |r, c| {
                let key = g.gids[g.edge_src[r]] as f64 * 1000.0 + g.gids[g.edge_dst[r]] as f64;
                ((key + c as f64) * 0.017).cos()
            });
            (x, e)
        };

        // R = 1 reference.
        let reference = World::run(1, |comm| {
            let (params, layer) = build();
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let (xv, ev) = feats(&global);
            let x = tape.leaf(xv);
            let e = tape.leaf(ev);
            let idx = GraphIndices::from_graph(&global);
            let ctx = HaloContext::single(comm.clone());
            let (xn, _) = layer.forward(&mut tape, &bound, x, e, &global, &idx, &ctx);
            tape.value(xn).clone()
        })
        .pop()
        .expect("one result");

        // R = 2 distributed with halo exchange.
        let graphs2 = graphs.clone();
        let dist = World::run(2, move |comm| {
            let g = Arc::clone(&graphs2[comm.rank()]);
            let (params, layer) = build();
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let (xv, ev) = feats(&g);
            let x = tape.leaf(xv);
            let e = tape.leaf(ev);
            let idx = GraphIndices::from_graph(&g);
            let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
            let (xn, _) = layer.forward(&mut tape, &bound, x, e, &g, &idx, &ctx);
            (g.gids.clone(), tape.value(xn).clone())
        });

        for (gids, xn) in &dist {
            for (r, &gid) in gids.iter().enumerate() {
                let gr = global.local_of_gid(gid).expect("gid in global graph");
                for c in 0..hidden {
                    let a = xn.get(r, c);
                    let b = reference.get(gr, c);
                    assert!(
                        (a - b).abs() < 1e-10,
                        "gid {gid} col {c}: distributed {a} vs global {b}"
                    );
                }
            }
        }
    }

    /// Ablation of the 1/d_ij edge-degree weights (paper Eq. 4b): with halo
    /// exchanges ON but the degree scaling dropped, duplicated boundary
    /// edges are double-counted and consistency breaks — showing that the
    /// weights and the exchange are *both* required.
    #[test]
    fn dropping_degree_weights_breaks_consistency() {
        let mesh = BoxMesh::new((2, 2, 2), 2, (1.0, 1.0, 1.0), false);
        let global = Arc::new(build_global_graph(&mesh));
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs: Vec<Arc<LocalGraph>> = build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect();
        let hidden = 4;
        let build = || {
            let mut params = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(99);
            let layer = ConsistentMpLayer::new(&mut params, "mp", hidden, 1, &mut rng);
            (params, layer)
        };
        let feats = |g: &LocalGraph| {
            Tensor::from_fn(g.n_local(), hidden, |r, c| {
                ((g.gids[r] as f64 + 1.3 * c as f64) * 0.21).sin()
            })
        };

        let reference = World::run(1, |comm| {
            let (params, layer) = build();
            let idx = GraphIndices::from_graph(&global);
            let ctx = HaloContext::single(comm.clone());
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let x = tape.leaf(feats(&global));
            let e = tape.leaf(Tensor::zeros(global.n_edges(), hidden));
            let (xn, _) = layer.forward(&mut tape, &bound, x, e, &global, &idx, &ctx);
            tape.value(xn).clone()
        })
        .into_iter()
        .next()
        .expect("one result");

        let graphs2 = graphs.clone();
        let dist = World::run(2, move |comm| {
            let g = Arc::clone(&graphs2[comm.rank()]);
            let (params, layer) = build();
            let mut idx = GraphIndices::from_graph(&g);
            // The ablation: pretend every edge is owned once.
            idx.edge_inv_degree = Arc::new(vec![1.0; g.n_edges()]);
            let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let x = tape.leaf(feats(&g));
            let e = tape.leaf(Tensor::zeros(g.n_edges(), hidden));
            let (xn, _) = layer.forward(&mut tape, &bound, x, e, &g, &idx, &ctx);
            (g.gids.clone(), tape.value(xn).clone())
        });

        let mut max_dev = 0.0f64;
        for (gids, xn) in &dist {
            for (r, &gid) in gids.iter().enumerate() {
                let gr = global.local_of_gid(gid).expect("gid in global");
                for c in 0..hidden {
                    max_dev = max_dev.max((xn.get(r, c) - reference.get(gr, c)).abs());
                }
            }
        }
        assert!(
            max_dev > 1e-3,
            "halo exchange alone (without 1/d_ij) should not be consistent; dev {max_dev}"
        );
    }

    /// Without halo exchange (mode None), boundary nodes must deviate from
    /// the R=1 reference — the inconsistency the paper's Fig. 6 shows.
    #[test]
    fn standard_layer_deviates_at_boundaries() {
        let mesh = BoxMesh::new((2, 2, 2), 2, (1.0, 1.0, 1.0), false);
        let global = Arc::new(build_global_graph(&mesh));
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs: Vec<Arc<LocalGraph>> = build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect();
        let hidden = 4;
        let build = || {
            let mut params = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(99);
            let layer = ConsistentMpLayer::new(&mut params, "mp", hidden, 1, &mut rng);
            (params, layer)
        };
        let feats = |g: &LocalGraph| {
            Tensor::from_fn(g.n_local(), hidden, |r, c| {
                ((g.gids[r] as f64 + 1.3 * c as f64) * 0.21).sin()
            })
        };

        let reference = World::run(1, |comm| {
            let (params, layer) = build();
            let idx = GraphIndices::from_graph(&global);
            let ctx = HaloContext::single(comm.clone());
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let x = tape.leaf(feats(&global));
            let e = tape.leaf(Tensor::zeros(global.n_edges(), hidden));
            let (xn, _) = layer.forward(&mut tape, &bound, x, e, &global, &idx, &ctx);
            tape.value(xn).clone()
        })
        .into_iter()
        .next()
        .expect("one result");

        let graphs2 = graphs.clone();
        let dist = World::run(2, move |comm| {
            let g = Arc::clone(&graphs2[comm.rank()]);
            let (params, layer) = build();
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let x = tape.leaf(feats(&g));
            let e = tape.leaf(Tensor::zeros(g.n_edges(), hidden));
            let idx = GraphIndices::from_graph(&g);
            let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::None);
            let (xn, _) = layer.forward(&mut tape, &bound, x, e, &g, &idx, &ctx);
            (g.gids.clone(), tape.value(xn).clone())
        });

        let mut max_boundary_dev = 0.0f64;
        let mut max_interior_dev = 0.0f64;
        for (gids, xn) in &dist {
            for (r, &gid) in gids.iter().enumerate() {
                let gr = global.local_of_gid(gid).expect("gid in global");
                let shared = graphs
                    .iter()
                    .filter(|g| g.local_of_gid(gid).is_some())
                    .count()
                    > 1;
                for c in 0..hidden {
                    let dev = (xn.get(r, c) - reference.get(gr, c)).abs();
                    if shared {
                        max_boundary_dev = max_boundary_dev.max(dev);
                    } else {
                        max_interior_dev = max_interior_dev.max(dev);
                    }
                }
            }
        }
        assert!(
            max_boundary_dev > 1e-3,
            "boundary deviation {max_boundary_dev} suspiciously small"
        );
        // One layer of message passing only corrupts nodes within one hop of
        // the cut; most interior nodes remain exact.
        assert!(max_interior_dev < max_boundary_dev);
    }
}
