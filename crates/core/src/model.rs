//! The encode-process-decode GNN (paper Sec. III): node/edge encoders,
//! `M` consistent neural message passing layers, and a node decoder.

use std::sync::Arc;

use cgnn_graph::LocalGraph;
use cgnn_tensor::nn::{BoundParams, Mlp, ParamSet};
use cgnn_tensor::{Tape, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::exchange::HaloContext;
use crate::mp_layer::{ConsistentMpLayer, GraphIndices};

/// Architecture hyperparameters (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnnConfig {
    /// Hidden channel dimensionality `N_H`.
    pub hidden: usize,
    /// Number of neural message passing layers `M`.
    pub n_mp_layers: usize,
    /// Interior (`h -> h`) layers per MLP ("MLP hidden layers" in Table I).
    pub mlp_hidden: usize,
    /// Input node features (3 velocity components).
    pub node_in: usize,
    /// Input edge features (7: relative features + distance + magnitude).
    pub edge_in: usize,
    /// Output node features.
    pub node_out: usize,
}

impl GnnConfig {
    /// The paper's "small" configuration: `N_H = 8`, `M = 4`, 2 MLP hidden
    /// layers (3,979 parameters in the paper; 4,003 here — the paper does
    /// not fully specify MLP internals, see EXPERIMENTS.md).
    pub fn small() -> Self {
        GnnConfig {
            hidden: 8,
            n_mp_layers: 4,
            mlp_hidden: 2,
            node_in: 3,
            edge_in: 7,
            node_out: 3,
        }
    }

    /// The paper's "large" configuration: `N_H = 32`, `M = 4`, 5 MLP hidden
    /// layers (91,459 parameters in the paper; 91,555 here).
    pub fn large() -> Self {
        GnnConfig {
            hidden: 32,
            n_mp_layers: 4,
            mlp_hidden: 5,
            node_in: 3,
            edge_in: 7,
            node_out: 3,
        }
    }
}

/// Encode-process-decode GNN with consistent message passing.
pub struct ConsistentGnn {
    /// The architecture hyper-parameters this model was built from.
    pub config: GnnConfig,
    node_encoder: Mlp,
    edge_encoder: Mlp,
    layers: Vec<ConsistentMpLayer>,
    node_decoder: Mlp,
}

impl ConsistentGnn {
    /// Build the model, registering all parameters into `params`.
    ///
    /// Initialization is a pure function of `(config, rng)`; seeding the RNG
    /// identically on every rank yields identical replicas, which is how the
    /// DDP-style setup of the paper shares `theta` across ranks.
    pub fn new(params: &mut ParamSet, config: GnnConfig, rng: &mut impl Rng) -> Self {
        let h = config.hidden;
        let node_encoder = Mlp::new(
            params,
            "enc.node",
            config.node_in,
            h,
            h,
            config.mlp_hidden,
            true,
            rng,
        );
        let edge_encoder = Mlp::new(
            params,
            "enc.edge",
            config.edge_in,
            h,
            h,
            config.mlp_hidden,
            true,
            rng,
        );
        let layers = (0..config.n_mp_layers)
            .map(|i| ConsistentMpLayer::new(params, &format!("mp{i}"), h, config.mlp_hidden, rng))
            .collect();
        // Decoder has no layer norm (outputs are physical quantities).
        let node_decoder = Mlp::new(
            params,
            "dec.node",
            h,
            h,
            config.node_out,
            config.mlp_hidden,
            false,
            rng,
        );
        ConsistentGnn {
            config,
            node_encoder,
            edge_encoder,
            layers,
            node_decoder,
        }
    }

    /// Convenience: build model + fresh parameter set from a seed.
    pub fn seeded(config: GnnConfig, seed: u64) -> (ParamSet, Self) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Self::new(&mut params, config, &mut rng);
        (params, model)
    }

    /// Full forward pass: encode, M rounds of consistent message passing,
    /// decode. `x` is `[n_local, node_in]`, `e` is `[n_edges, edge_in]`;
    /// the result is `[n_local, node_out]`.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        tape: &mut Tape,
        bound: &BoundParams,
        x: VarId,
        e: VarId,
        graph: &Arc<LocalGraph>,
        idx: &GraphIndices,
        ctx: &HaloContext,
    ) -> VarId {
        let mut xh = self.node_encoder.forward(tape, bound, x);
        let mut eh = self.edge_encoder.forward(tape, bound, e);
        for layer in &self.layers {
            let (xn, en) = layer.forward(tape, bound, xh, eh, graph, idx, ctx);
            xh = xn;
            eh = en;
        }
        self.node_decoder.forward(tape, bound, xh)
    }

    /// Scalar parameter count (paper Table I's "Trainable parameters").
    pub fn num_scalars(&self) -> usize {
        self.node_encoder.num_scalars()
            + self.edge_encoder.num_scalars()
            + self
                .layers
                .iter()
                .map(ConsistentMpLayer::num_scalars)
                .sum::<usize>()
            + self.node_decoder.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_comm::World;
    use cgnn_graph::{build_global_graph, edge_features, node_noise_features};
    use cgnn_mesh::{BoxMesh, GidNoise};
    use cgnn_tensor::Tensor;

    #[test]
    fn table1_parameter_counts() {
        // Paper Table I reports 3,979 (small) and 91,459 (large); our MLP
        // interpretation lands within 0.7% (4,003 / 91,555). The exact MLP
        // layout (bias/LN placement) is not fully specified in the paper.
        let (params, model) = ConsistentGnn::seeded(GnnConfig::small(), 0);
        assert_eq!(model.num_scalars(), 4_003);
        assert_eq!(params.num_scalars(), model.num_scalars());
        let (params, model) = ConsistentGnn::seeded(GnnConfig::large(), 0);
        assert_eq!(model.num_scalars(), 91_555);
        assert_eq!(params.num_scalars(), model.num_scalars());
    }

    #[test]
    fn seeded_models_are_identical() {
        let (p1, _) = ConsistentGnn::seeded(GnnConfig::small(), 7);
        let (p2, _) = ConsistentGnn::seeded(GnnConfig::small(), 7);
        assert_eq!(p1.flatten(), p2.flatten());
        let (p3, _) = ConsistentGnn::seeded(GnnConfig::small(), 8);
        assert_ne!(p1.flatten(), p3.flatten());
    }

    #[test]
    fn forward_produces_expected_shapes() {
        let mesh = BoxMesh::unit_cube(2, 1);
        let g = Arc::new(build_global_graph(&mesh));
        let (params, model) = ConsistentGnn::seeded(GnnConfig::small(), 3);
        let noise = GidNoise::new(1);
        let xbuf = node_noise_features(&g, &noise, 3);
        let ebuf = edge_features(&g, &xbuf, 3);
        let out = World::run(1, |comm| {
            let ctx = HaloContext::single(comm.clone());
            let idx = GraphIndices::from_graph(&g);
            let mut tape = Tape::new();
            let bound = params.bind(&mut tape);
            let x = tape.leaf(Tensor::from_vec(g.n_local(), 3, xbuf.clone()));
            let e = tape.leaf(Tensor::from_vec(g.n_edges(), 7, ebuf.clone()));
            let y = model.forward(&mut tape, &bound, x, e, &g, &idx, &ctx);
            tape.value(y).shape()
        });
        assert_eq!(out[0], (g.n_local(), 3));
    }
}
