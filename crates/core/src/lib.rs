//! # cgnn-core
//!
//! The paper's primary contribution: **consistent neural message passing**
//! for distributed mesh-based GNNs.
//!
//! * [`exchange`] — the object-safe [`HaloExchange`] strategy trait with
//!   the four implementations the paper compares (None / A2A /
//!   Neighbor-A2A / Send-Recv) plus the coalesced all-gather and
//!   overlapped non-blocking extensions,
//! * [`mp_layer`] — the consistent NMP layer (paper Eq. 4) with a
//!   differentiable halo swap recorded on the autodiff tape,
//! * [`model`] — encode-process-decode GNN with the Table I configurations,
//! * [`loss`] — the consistent MSE (paper Eq. 6),
//! * [`ddp`] — fused deterministic gradient all-reduce,
//! * [`trainer`] — the distributed training loop keeping replicas in
//!   bit-identical lockstep.
//!
//! Consistency contract (paper Eqs. 2-3): any function of the GNN output,
//! and any parameter gradient, is invariant to the number and location of
//! partition boundaries. Integration tests under `tests/` verify both
//! against the un-partitioned R = 1 graph.

#![warn(missing_docs)]

pub mod config;
pub mod ddp;
pub mod exchange;
pub mod loss;
pub mod model;
pub mod mp_layer;
pub mod schedule;
pub mod trainer;

pub use exchange::{
    halo_exchange_apply, CoalescedAllGather, DenseAllToAll, ExchangeTraffic, HaloContext,
    HaloExchange, HaloExchangeMode, NeighborAllToAll, NoExchange, OverlappedNeighborExchange,
    SendRecvExchange,
};
pub use loss::{all_reduce_scalar, consistent_mse, local_mse};
pub use model::{ConsistentGnn, GnnConfig};
pub use mp_layer::{halo_sync, ConsistentMpLayer, GraphIndices, HaloSyncOp};
pub use schedule::{shuffled_indices, EpochReport, EpochSchedule};
pub use trainer::{RankData, Trainer};
