//! The consistent mean-squared-error loss (paper Eq. 6).
//!
//! `L = AllReduce(S_r) / (N_eff * F_y)` with
//! `S_r = sum_i (1/d_i) * sum_j (Y_ij - Yhat_ij)^2` and
//! `N_eff = AllReduce(sum_i 1/d_i)`. The `1/d_i` weights stop coincident
//! nodes from being double-counted, and the two forward all-reduces make
//! every rank see the *identical* un-partitioned loss value.
//!
//! The sum-all-reduce is recorded on the tape with an **identity backward**:
//! since `L = (1/(N_eff F_y)) * sum_r S_r`, rank `r`'s tape produces the
//! partial gradient `dL_r = (1/(N_eff F_y)) dS_r/dtheta`, and the DDP step
//! ([`crate::ddp`]) *sums* partials across ranks — together they equal the
//! R=1 gradient exactly (paper Eq. 3). This matches the paper's accounting
//! of "two all-reduces in the forward and one in the backward pass".

use cgnn_comm::Comm;
use cgnn_graph::LocalGraph;
use cgnn_tensor::tape::CustomOp;
use cgnn_tensor::{Tape, Tensor, VarId};
use std::sync::Arc;

/// Tape op: forward = all-reduce(sum) of a scalar; backward = identity
/// (see module docs for why the partials are summed by DDP instead).
struct AllReduceSumOp;

impl CustomOp for AllReduceSumOp {
    fn name(&self) -> &'static str {
        "all_reduce_sum"
    }

    fn backward(&self, grad_out: &Tensor, _inputs: &[&Tensor]) -> Vec<Option<Tensor>> {
        // detlint: allow(hotpath-reachability, "CustomOp::backward returns owned gradients by contract; an aliased pass-through gradient fast path is tracked in ROADMAP")
        vec![Some(grad_out.clone())]
    }
}

/// Record a scalar sum-all-reduce on the tape.
pub fn all_reduce_scalar(tape: &mut Tape, v: VarId, comm: &Comm) -> VarId {
    let local = tape.value(v).item();
    let global = comm.all_reduce_scalar(local);
    tape.custom(vec![v], Tensor::scalar(global), Box::new(AllReduceSumOp))
}

/// Consistent MSE between prediction `pred` (`[n_local, F_y]` on the tape)
/// and `target`. Collective: every rank must call it at the same point.
/// Returns the scalar loss variable; its value is identical on all ranks
/// and equal to the R=1 MSE of the un-partitioned graph.
pub fn consistent_mse(
    tape: &mut Tape,
    pred: VarId,
    target: &Tensor,
    graph: &LocalGraph,
    inv_degree: &Arc<Vec<f64>>,
    comm: &Comm,
) -> VarId {
    let fy = target.cols();
    assert_eq!(
        tape.value(pred).shape(),
        target.shape(),
        "pred/target shape mismatch"
    );
    assert_eq!(
        target.rows(),
        graph.n_local(),
        "target must cover local nodes"
    );

    // S_r (Eq. 6b): degree-weighted sum of squared errors.
    let t = tape.leaf(target.clone());
    let diff = tape.sub(pred, t);
    let s_r = tape.weighted_sq_sum(diff, inv_degree.clone());

    // First forward all-reduce: S = sum_r S_r (Eq. 6a).
    let s = all_reduce_scalar(tape, s_r, comm);

    // Second forward all-reduce: N_eff (Eq. 6c). A constant w.r.t. theta.
    let n_eff = comm.all_reduce_scalar(inv_degree.iter().sum());

    tape.scale(s, 1.0 / (n_eff * fy as f64))
}

/// Plain (inconsistent) per-rank MSE — what naive distributed data parallel
/// training would compute (paper Eq. 5 evaluated locally). Used to
/// demonstrate the violation of Eq. 2.
pub fn local_mse(tape: &mut Tape, pred: VarId, target: &Tensor) -> VarId {
    let (n, fy) = target.shape();
    let t = tape.leaf(target.clone());
    let diff = tape.sub(pred, t);
    let w = Arc::new(vec![1.0; n]);
    let s = tape.weighted_sq_sum(diff, w);
    tape.scale(s, 1.0 / (n as f64 * fy as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_comm::World;
    use cgnn_graph::{build_distributed_graph, build_global_graph};
    use cgnn_mesh::{BoxMesh, GidNoise};
    use cgnn_partition::{Partition, Strategy};

    /// The consistent loss on R=4 must equal the R=1 MSE bit-for-bit up to
    /// summation-order rounding (paper Eq. 2 with S = MSE).
    #[test]
    fn consistent_mse_matches_unpartitioned() {
        let mesh = BoxMesh::new((4, 4, 4), 2, (1.0, 1.0, 1.0), false);
        let global = build_global_graph(&mesh);
        let part = Partition::new(&mesh, 4, Strategy::Block);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let noise = GidNoise::new(11);
        let fy = 3;

        // Reference R=1 MSE.
        let pred = |gid: u64, c: usize| noise.sample(gid, c as u32);
        let targ = |gid: u64, c: usize| noise.sample(gid, (c + 16) as u32);
        let mut sum = 0.0;
        for &gid in &global.gids {
            for c in 0..fy {
                let d = pred(gid, c) - targ(gid, c);
                sum += d * d;
            }
        }
        let reference = sum / (global.n_local() as f64 * fy as f64);

        let losses = World::run(4, |comm| {
            let g = &graphs[comm.rank()];
            let inv = Arc::new(g.node_inv_degree.clone());
            let mut tape = Tape::new();
            let p = tape.leaf(Tensor::from_fn(g.n_local(), fy, |r, c| pred(g.gids[r], c)));
            let t = Tensor::from_fn(g.n_local(), fy, |r, c| targ(g.gids[r], c));
            let l = consistent_mse(&mut tape, p, &t, g, &inv, comm);
            tape.value(l).item()
        });
        for l in &losses {
            assert!(
                (l - reference).abs() / reference < 1e-12,
                "consistent loss {l} vs reference {reference}"
            );
        }
    }

    /// Naive local MSEs averaged across ranks do NOT reproduce the R=1 loss
    /// (the inconsistency that motivates Eq. 6).
    #[test]
    fn naive_local_mse_is_inconsistent() {
        let mesh = BoxMesh::new((4, 4, 4), 2, (1.0, 1.0, 1.0), false);
        let global = build_global_graph(&mesh);
        let part = Partition::new(&mesh, 4, Strategy::Block);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let noise = GidNoise::new(11);
        let fy = 3;
        let pred = |gid: u64, c: usize| noise.sample(gid, c as u32);
        let targ = |gid: u64, c: usize| noise.sample(gid, (c + 16) as u32);

        let mut sum = 0.0;
        for &gid in &global.gids {
            for c in 0..fy {
                let d = pred(gid, c) - targ(gid, c);
                sum += d * d;
            }
        }
        let reference = sum / (global.n_local() as f64 * fy as f64);

        let locals = World::run(4, |comm| {
            let g = &graphs[comm.rank()];
            let mut tape = Tape::new();
            let p = tape.leaf(Tensor::from_fn(g.n_local(), fy, |r, c| pred(g.gids[r], c)));
            let t = Tensor::from_fn(g.n_local(), fy, |r, c| targ(g.gids[r], c));
            let l = local_mse(&mut tape, p, &t);
            tape.value(l).item()
        });
        let avg: f64 = locals.iter().sum::<f64>() / locals.len() as f64;
        assert!(
            (avg - reference).abs() / reference > 1e-6,
            "naive average {avg} should deviate from {reference}"
        );
    }

    #[test]
    fn loss_gradient_flows_through_allreduce() {
        let out = World::run(2, |comm| {
            let mut tape = Tape::new();
            let x = tape.leaf(Tensor::scalar((comm.rank() + 1) as f64));
            let sq = tape.mul(x, x);
            let total = all_reduce_scalar(&mut tape, sq, comm);
            let grads = tape.backward(total);
            (tape.value(total).item(), grads.get(x).expect("grad").item())
        });
        // total = 1 + 4 = 5 on both ranks; d total/dx_r = 2 x_r locally.
        assert_eq!(out[0].0, 5.0);
        assert_eq!(out[1].0, 5.0);
        assert_eq!(out[0].1, 2.0);
        assert_eq!(out[1].1, 4.0);
    }
}
