//! Distributed training loop: forward, consistent loss, backward,
//! DDP gradient reduction, deterministic optimizer step.

use std::sync::Arc;

use cgnn_graph::{edge_features, node_velocity_features, LocalGraph, EDGE_FEATS, NODE_FEATS};
use cgnn_mesh::TaylorGreen;
use cgnn_tensor::{Adam, BoundParams, Tape, Tensor, VarId};

use crate::ddp::{flatten_local_gradients, reduce_flat_gradients};
use crate::exchange::HaloContext;
use crate::loss::consistent_mse;
use crate::model::{ConsistentGnn, GnnConfig};
use crate::mp_layer::GraphIndices;
use crate::schedule::{EpochReport, EpochSchedule};

/// Immutable per-rank training data: features, targets, and index buffers.
#[derive(Clone)]
pub struct RankData {
    /// The reduced distributed graph this sample lives on.
    pub graph: Arc<LocalGraph>,
    /// Shared per-pass index buffers derived from `graph`.
    pub idx: GraphIndices,
    /// `[n_local, 3]` input node features.
    pub x: Tensor,
    /// `[n_edges, 7]` input edge features.
    pub e: Tensor,
    /// `[n_local, 3]` regression target.
    pub target: Tensor,
}

impl RankData {
    /// Build from raw feature buffers.
    pub fn new(graph: Arc<LocalGraph>, x: Vec<f64>, target: Vec<f64>) -> Self {
        let n = graph.n_local();
        let e_buf = edge_features(&graph, &x, NODE_FEATS);
        let idx = GraphIndices::from_graph(&graph);
        RankData {
            idx,
            x: Tensor::from_vec(n, NODE_FEATS, x),
            e: Tensor::from_vec(graph.n_edges(), EDGE_FEATS, e_buf),
            target: Tensor::from_vec(n, NODE_FEATS, target),
            graph,
        }
    }

    /// The paper's demonstration task: node-level autoencoding of the
    /// Taylor-Green velocity field (`Yhat = X`, paper Sec. III-A).
    pub fn tgv_autoencode(graph: Arc<LocalGraph>, field: &TaylorGreen, t: f64) -> Self {
        let x = node_velocity_features(&graph, field, t);
        Self::new(graph, x.clone(), x)
    }

    /// Forecasting task: predict the velocity at `t1` from the field at
    /// `t0` — the realistic surrogate-modeling setup the paper motivates.
    pub fn tgv_forecast(graph: Arc<LocalGraph>, field: &TaylorGreen, t0: f64, t1: f64) -> Self {
        let x = node_velocity_features(&graph, field, t0);
        let y = node_velocity_features(&graph, field, t1);
        Self::new(graph, x, y)
    }
}

/// One rank's training state. Every rank constructs a `Trainer` with the
/// same `seed`, giving identical replicas; consistency (Eq. 3) plus the
/// deterministic reductions keep them in lockstep forever after.
pub struct Trainer {
    /// The encode-process-decode GNN architecture.
    pub model: ConsistentGnn,
    /// The trainable parameters (replica-identical across ranks).
    pub params: cgnn_tensor::ParamSet,
    /// The Adam optimizer, whose step count doubles as the trainer's
    /// position in an epoch schedule.
    pub opt: Adam,
    /// The halo-exchange context wiring this rank's consistency.
    pub ctx: HaloContext,
    /// Reusable autodiff workspace: reset (not dropped) between forward
    /// passes so steady-state steps draw recycled buffers instead of
    /// allocating — fresh multi-megabyte `Vec`s cost real page faults
    /// every pass. Replays are bit-identical to fresh tapes. `RefCell`
    /// because evaluation entry points take `&self`; each rank owns its
    /// trainer, so the borrow is never contended.
    tape: std::cell::RefCell<Tape>,
    /// Cached disjoint-union graphs for [`Trainer::predict_batch`], keyed
    /// by batch size and invalidated when the base graph changes. Serving
    /// replicas predict over one immutable graph forever, so after warmup
    /// every batch size hits the cache.
    batch_cache: std::cell::RefCell<BatchCache>,
}

/// Memoized `LocalGraph::replicated` results for one base graph
/// (address-keyed: [`RankData`] holds its graph behind an `Arc`, so the
/// address is stable for the graph's lifetime).
#[derive(Default)]
struct BatchCache {
    base: usize,
    per_size: std::collections::BTreeMap<usize, (Arc<LocalGraph>, GraphIndices)>,
}

impl Trainer {
    /// Seed a fresh trainer: identical `(config, seed)` on every rank
    /// yields bit-identical initial replicas.
    pub fn new(config: GnnConfig, seed: u64, lr: f64, ctx: HaloContext) -> Self {
        let (params, model) = ConsistentGnn::seeded(config, seed);
        Trainer {
            model,
            params,
            opt: Adam::new(lr),
            ctx,
            tape: std::cell::RefCell::new(Tape::new()),
            batch_cache: std::cell::RefCell::new(BatchCache::default()),
        }
    }

    /// Reinstall a training checkpoint (parameters + Adam state, as
    /// produced by `cgnn-tensor::serialize::write_checkpoint`): names and
    /// shapes are verified against this trainer's architecture, and the
    /// next step resumes **bit-identically** to the uninterrupted run.
    /// Non-collective; every rank restores the same (replica-identical)
    /// checkpoint.
    pub fn restore(
        &mut self,
        params: &cgnn_tensor::ParamSet,
        opt: &cgnn_tensor::AdamState,
    ) -> std::io::Result<()> {
        opt.validate_for(params)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        cgnn_tensor::restore_into(&mut self.params, params)?;
        self.opt.set_state(opt.clone());
        Ok(())
    }

    /// Number of optimizer steps this trainer has taken (checkpoint
    /// restores reinstall the saved count) — the position
    /// [`Trainer::train_epoch`] resumes from.
    pub fn steps_taken(&self) -> u64 {
        self.opt.steps()
    }

    /// Record one sample's forward pass and consistent loss on `tape`,
    /// returning the loss variable. Shared by evaluation, single-sample
    /// steps, and mini-batch accumulation.
    fn loss_graph(&self, tape: &mut Tape, bound: &BoundParams, data: &RankData) -> VarId {
        let x = tape.leaf_copy(&data.x);
        let e = tape.leaf_copy(&data.e);
        let y = self
            .model
            .forward(tape, bound, x, e, &data.graph, &data.idx, &self.ctx);
        consistent_mse(
            tape,
            y,
            &data.target,
            &data.graph,
            &data.idx.node_inv_degree,
            &self.ctx.comm,
        )
    }

    /// Forward pass + consistent loss, no parameter update. Collective.
    pub fn eval_loss(&self, data: &RankData) -> f64 {
        let mut tape = self.tape.borrow_mut();
        tape.reset();
        let bound = self.params.bind(&mut tape);
        let l = self.loss_graph(&mut tape, &bound, data);
        tape.value(l).item()
    }

    /// Inference: forward pass returning the prediction matrix.
    pub fn predict(&self, data: &RankData) -> Tensor {
        let mut tape = self.tape.borrow_mut();
        tape.reset();
        let bound = self.params.bind(&mut tape);
        let x = tape.leaf_copy(&data.x);
        let e = tape.leaf_copy(&data.e);
        let y = self
            .model
            .forward(&mut tape, &bound, x, e, &data.graph, &data.idx, &self.ctx);
        tape.value(y).clone()
    }

    /// Micro-batched inference: the predictions of every sample in
    /// `batch`, **bit-identical** to calling [`Trainer::predict`] on each
    /// sample alone, with one forward pass amortized over the whole batch.
    ///
    /// On an identity exchange (single-rank / halo-free graph — the
    /// serving configuration) the samples are stacked into one
    /// `[B * n_local, F]` tensor over the disjoint-union graph
    /// ([`LocalGraph::replicated`], memoized per batch size) and the model
    /// runs **once**: one parameter bind, one kernel dispatch per op, rows
    /// partitioned per sample. Per-sample results cannot differ from the
    /// singleton pass because every kernel is row-local or reduces per
    /// destination node in input order, and the union adds no cross-sample
    /// edges (the determinism contract of `docs/PERFORMANCE.md`).
    ///
    /// Distributed (halo-carrying) data falls back to per-sample passes on
    /// the shared tape workspace — same results, per-pass exchanges kept
    /// collective-correct.
    ///
    /// # Panics
    /// If the batch is empty or its samples reference different graphs.
    pub fn predict_batch(&self, batch: &[&RankData]) -> Vec<Tensor> {
        assert!(!batch.is_empty(), "empty inference batch");
        let base = &batch[0].graph;
        assert!(
            batch.iter().all(|d| Arc::ptr_eq(&d.graph, base)),
            "predict_batch samples must share one graph"
        );
        if batch.len() == 1 || base.n_halo() != 0 || self.ctx.comm.size() > 1 {
            return batch.iter().map(|d| self.predict(d)).collect();
        }
        let b = batch.len();
        let (n, node_in) = batch[0].x.shape();
        let (m, edge_in) = batch[0].e.shape();
        // Memoized disjoint union of `b` copies of the base graph.
        {
            let mut cache = self.batch_cache.borrow_mut();
            let key = Arc::as_ptr(base) as usize;
            if cache.base != key {
                cache.base = key;
                cache.per_size.clear();
            }
            cache.per_size.entry(b).or_insert_with(|| {
                let g = Arc::new(base.replicated(b));
                let idx = GraphIndices::from_graph(&g);
                (g, idx)
            });
        }
        let cache = self.batch_cache.borrow();
        let (graph, idx) = &cache.per_size[&b];
        // Stack the batch sample-major; each copy's rows line up with its
        // copy of the union graph.
        let mut x_cat = Vec::with_capacity(b * n * node_in);
        let mut e_cat = Vec::with_capacity(b * m * edge_in);
        for d in batch {
            debug_assert_eq!(d.x.shape(), (n, node_in));
            debug_assert_eq!(d.e.shape(), (m, edge_in));
            x_cat.extend_from_slice(d.x.data());
            e_cat.extend_from_slice(d.e.data());
        }
        let mut tape = self.tape.borrow_mut();
        tape.reset();
        let bound = self.params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_vec(b * n, node_in, x_cat));
        let e = tape.leaf(Tensor::from_vec(b * m, edge_in, e_cat));
        let y = self
            .model
            .forward(&mut tape, &bound, x, e, graph, idx, &self.ctx);
        let out = tape.value(y);
        let node_out = out.cols();
        (0..b)
            .map(|k| {
                Tensor::from_vec(
                    n,
                    node_out,
                    out.data()[k * n * node_out..(k + 1) * n * node_out].to_vec(),
                )
            })
            .collect()
    }

    /// One training iteration (forward, backward, DDP reduce, Adam step).
    /// Returns the loss *before* the update. Collective.
    pub fn step(&mut self, data: &RankData) -> f64 {
        self.step_batch(&[data])
    }

    /// One optimizer step over a mini-batch: forward + backward per sample,
    /// gradients accumulated locally and averaged, then **one** fused DDP
    /// all-reduce and one Adam update. Returns the mean pre-update loss of
    /// the batch. Collective; every rank must present the same batch (same
    /// sample order, same size), which is what [`EpochSchedule`]
    /// guarantees. A single-sample batch is bit-identical to
    /// [`Trainer::step`].
    pub fn step_batch(&mut self, batch: &[&RankData]) -> f64 {
        assert!(!batch.is_empty(), "empty mini-batch");
        let mut loss_sum = 0.0;
        let mut flat_sum: Vec<f64> = Vec::new();
        // Reuse one tape (and its buffer pool) across the whole batch — and,
        // because the trainer owns it, across every step of the run.
        let tape_cell = std::mem::take(&mut self.tape);
        let mut tape = tape_cell.into_inner();
        for data in batch {
            tape.reset();
            let bound = self.params.bind(&mut tape);
            let l = self.loss_graph(&mut tape, &bound, data);
            loss_sum += tape.value(l).item();
            let grads = tape.backward(l);
            let flat = flatten_local_gradients(&self.params, &bound, &grads);
            tape.recycle(grads);
            if flat_sum.is_empty() {
                flat_sum = flat;
            } else {
                for (a, g) in flat_sum.iter_mut().zip(flat) {
                    *a += g;
                }
            }
        }
        self.tape = std::cell::RefCell::new(tape);
        if batch.len() > 1 {
            let inv = 1.0 / batch.len() as f64;
            for v in &mut flat_sum {
                *v *= inv;
            }
        }
        let reduced = reduce_flat_gradients(&self.params, flat_sum, &self.ctx.comm);
        self.opt.step(&mut self.params, &reduced);
        loss_sum / batch.len() as f64
    }

    /// Run `iterations` training steps, returning the loss history.
    pub fn train(&mut self, data: &RankData, iterations: usize) -> Vec<f64> {
        (0..iterations).map(|_| self.step(data)).collect()
    }

    /// Train the remaining mini-batches of `epoch` over the dataset
    /// `samples` according to `schedule`, returning the epoch's
    /// [`EpochReport`]. See [`Trainer::train_epoch_with`].
    pub fn train_epoch(
        &mut self,
        samples: &[RankData],
        schedule: &EpochSchedule,
        epoch: u64,
    ) -> EpochReport {
        self.train_epoch_with(samples, schedule, epoch, |_, _| {})
    }

    /// [`Trainer::train_epoch`] with a per-step hook: `on_step(trainer,
    /// global_step)` fires after every optimizer update (the session layer
    /// hangs periodic checkpointing off it).
    ///
    /// The epoch is *resume-aware*: the batches to run are derived from the
    /// optimizer's step count, so a trainer restored from a mid-epoch
    /// checkpoint continues with exactly the batches the uninterrupted run
    /// would have taken — [`EpochSchedule`] recomputes the same shuffled
    /// order from `(seed, epoch)` alone.
    ///
    /// # Panics
    /// If `samples` does not match the schedule's `n_samples`, or the
    /// optimizer's step count lies outside this epoch (the caller walked
    /// the epochs out of order).
    pub fn train_epoch_with(
        &mut self,
        samples: &[RankData],
        schedule: &EpochSchedule,
        epoch: u64,
        mut on_step: impl FnMut(&Trainer, u64),
    ) -> EpochReport {
        assert_eq!(
            samples.len(),
            schedule.n_samples,
            "dataset size does not match the schedule"
        );
        let spe = schedule.steps_per_epoch();
        let first_step = self.steps_taken();
        assert!(
            epoch * spe <= first_step && first_step < (epoch + 1) * spe,
            "optimizer at step {first_step} is outside epoch {epoch} \
             ({spe} steps per epoch)"
        );
        // One shuffle per epoch; each step slices the shared order.
        let order = schedule.order(epoch);
        let mut batch_losses = Vec::new();
        for s in (first_step - epoch * spe)..spe {
            let (lo, hi) = schedule.batch_bounds(s);
            let batch: Vec<&RankData> = order[lo..hi].iter().map(|&i| &samples[i]).collect();
            batch_losses.push(self.step_batch(&batch));
            let t = self.steps_taken();
            on_step(self, t);
        }
        EpochReport {
            epoch,
            first_step,
            batch_losses,
        }
    }

    /// Mean consistent loss of the current parameters over every sample of
    /// a dataset, in canonical (unshuffled) order. No updates. Collective.
    pub fn eval_mean_loss(&self, samples: &[RankData]) -> f64 {
        assert!(!samples.is_empty(), "empty dataset");
        samples.iter().map(|d| self.eval_loss(d)).sum::<f64>() / samples.len() as f64
    }

    /// Autoregressive rollout: repeatedly feed the model's prediction back
    /// as its input, regenerating the edge features from the predicted node
    /// state each step — the accelerated-simulation use-case the paper's
    /// introduction motivates. Returns the state after each of the `steps`
    /// applications. Because the model is consistent, a distributed rollout
    /// stays continuous across partition boundaries at every step.
    pub fn rollout(&self, data: &RankData, steps: usize) -> Vec<Tensor> {
        let mut states = Vec::with_capacity(steps);
        let mut current = data.x.clone();
        for _ in 0..steps {
            let step_data = RankData::new(
                Arc::clone(&data.graph),
                current.data().to_vec(),
                vec![0.0; current.len()], // target unused during inference
            );
            current = self.predict(&step_data);
            states.push(current.clone());
        }
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::HaloExchangeMode;
    use cgnn_comm::World;
    use cgnn_graph::{build_distributed_graph, build_global_graph};
    use cgnn_mesh::BoxMesh;
    use cgnn_partition::{Partition, Strategy};

    #[test]
    fn training_reduces_loss_single_rank() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let g = Arc::new(build_global_graph(&mesh));
        let field = TaylorGreen::new(0.01);
        let history = World::run(1, |comm| {
            let ctx = HaloContext::single(comm.clone());
            let mut trainer = Trainer::new(GnnConfig::small(), 42, 1e-3, ctx);
            let data = RankData::tgv_autoencode(Arc::clone(&g), &field, 0.0);
            trainer.train(&data, 30)
        })
        .pop()
        .expect("one history");
        assert!(
            history[29] < history[0] * 0.9,
            "loss did not drop: {history:?}"
        );
    }

    /// Distributed rollouts remain partition-consistent: after k
    /// autoregressive steps, coincident nodes still agree across ranks and
    /// with the R=1 rollout.
    #[test]
    fn rollout_is_partition_consistent() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let field = TaylorGreen::new(0.01);
        let global = Arc::new(cgnn_graph::build_global_graph(&mesh));
        let g1 = Arc::clone(&global);
        let reference = World::run(1, move |comm| {
            let ctx = HaloContext::single(comm.clone());
            let trainer = Trainer::new(GnnConfig::small(), 5, 1e-3, ctx);
            let data = RankData::tgv_autoencode(Arc::clone(&g1), &field, 0.0);
            trainer.rollout(&data, 3)
        })
        .pop()
        .expect("states");

        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let out = World::run(2, move |comm| {
            let g = Arc::new(graphs[comm.rank()].clone());
            let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
            let trainer = Trainer::new(GnnConfig::small(), 5, 1e-3, ctx);
            let data = RankData::tgv_autoencode(Arc::clone(&g), &field, 0.0);
            (g.gids.clone(), trainer.rollout(&data, 3))
        });
        for (gids, states) in &out {
            for (step, state) in states.iter().enumerate() {
                for (row, &gid) in gids.iter().enumerate() {
                    let gr = global.local_of_gid(gid).expect("gid");
                    for c in 0..3 {
                        let a = state.get(row, c);
                        let b = reference[step].get(gr, c);
                        assert!(
                            (a - b).abs() < 1e-9,
                            "rollout step {step} gid {gid} col {c}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    /// The serving contract: stacked micro-batched inference returns the
    /// same bits as one singleton `predict` per sample, at every batch
    /// size, including after training updates the parameters.
    #[test]
    fn predict_batch_bit_identical_to_looped_predict() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let g = Arc::new(build_global_graph(&mesh));
        let field = TaylorGreen::new(0.01);
        let ctx = HaloContext::single(cgnn_comm::LoopbackBackend::comm());
        let mut trainer = Trainer::new(GnnConfig::small(), 42, 1e-3, ctx);
        let samples: Vec<RankData> = [0.0, 0.1, 0.2, 0.3, 0.4]
            .iter()
            .map(|&t| RankData::tgv_autoencode(Arc::clone(&g), &field, t))
            .collect();
        trainer.train(&samples[0], 3); // non-seed parameters
        for b in [1usize, 2, 3, 5] {
            let batch: Vec<&RankData> = samples.iter().take(b).collect();
            let stacked = trainer.predict_batch(&batch);
            assert_eq!(stacked.len(), b);
            for (k, d) in batch.iter().enumerate() {
                let single = trainer.predict(d);
                assert_eq!(
                    stacked[k].data(),
                    single.data(),
                    "batch size {b}, sample {k}: stacked prediction diverged"
                );
            }
        }
        // Interleaving batch sizes reuses the memoized union graphs.
        let batch: Vec<&RankData> = samples.iter().take(2).collect();
        let again = trainer.predict_batch(&batch);
        assert_eq!(again[1].data(), trainer.predict(&samples[1]).data());
    }

    /// Distributed (halo-carrying) data takes the per-sample fallback and
    /// still matches looped singleton predictions.
    #[test]
    fn predict_batch_falls_back_on_distributed_graphs() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let field = TaylorGreen::new(0.01);
        let ok = World::run(2, |comm| {
            let g = Arc::new(graphs[comm.rank()].clone());
            let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
            let trainer = Trainer::new(GnnConfig::small(), 7, 1e-3, ctx);
            let a = RankData::tgv_autoencode(Arc::clone(&g), &field, 0.0);
            let b = RankData::tgv_autoencode(Arc::clone(&g), &field, 0.2);
            let batched = trainer.predict_batch(&[&a, &b]);
            let singles = [trainer.predict(&a), trainer.predict(&b)];
            batched[0].data() == singles[0].data() && batched[1].data() == singles[1].data()
        });
        assert_eq!(ok, vec![true, true]);
    }

    #[test]
    fn distributed_training_stays_in_lockstep() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));
        let field = TaylorGreen::new(0.01);
        let out = World::run(2, |comm| {
            let g = Arc::new(graphs[comm.rank()].clone());
            let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
            let mut trainer = Trainer::new(GnnConfig::small(), 42, 1e-3, ctx);
            let data = RankData::tgv_autoencode(g, &field, 0.0);
            let history = trainer.train(&data, 10);
            (history, trainer.params.flatten())
        });
        // Same loss trajectory and *bit-identical* parameters on both ranks.
        assert_eq!(out[0].0, out[1].0);
        assert_eq!(out[0].1, out[1].1);
    }
}
