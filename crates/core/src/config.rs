//! Central registry of every `CGNN_*` environment knob.
//!
//! Every environment variable the workspace reads is declared here as an
//! [`EnvKnob`] carrying its name, documented default, and a one-line
//! description. The registry is load-bearing in three ways:
//!
//! 1. **Single source of truth** — the "Environment knobs" table in the
//!    repository README is rendered from [`KNOBS`] and a unit test keeps
//!    the two in sync.
//! 2. **Machine-checked** — `cgnn-analyze`'s `env-var-registry` lint
//!    rejects any `std::env::var` read in the workspace whose variable
//!    name is not declared below, so ad-hoc knobs cannot accrete.
//! 3. **Sanctioned read point** — [`EnvKnob::lookup`] is the one place
//!    raw `std::env::var` happens for registry knobs; call sites that
//!    cannot depend on `cgnn-core` (e.g. `cgnn-comm`, which `cgnn-core`
//!    itself depends on) read their literal name directly, and the lint
//!    verifies the literal is declared here.
//!
//! Defaults listed as text are documentation: the operative default lives
//! at the call site (several binaries use different scales for the same
//! knob), and the table records the common case.

/// One declared environment variable: its name, documented default, and
/// what it controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvKnob {
    /// The environment variable name (`CGNN_*`).
    pub name: &'static str,
    /// Human-readable default shown in the README table.
    pub default: &'static str,
    /// One-line description of what the knob controls.
    pub doc: &'static str,
}

impl EnvKnob {
    /// Raw registry read: the value of the variable, if set and non-empty.
    ///
    /// This is the sanctioned `std::env::var` site for registry knobs —
    /// the `env-var-registry` lint whitelists this file and rejects
    /// unregistered reads everywhere else.
    pub fn lookup(&self) -> Option<String> {
        std::env::var(self.name).ok().filter(|v| !v.is_empty())
    }

    /// The knob parsed as `usize`, or `default` when unset or unparsable.
    pub fn usize_or(&self, default: usize) -> usize {
        self.lookup()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// The knob as a string, or `default` when unset.
    pub fn string_or(&self, default: &str) -> String {
        self.lookup().unwrap_or_else(|| default.to_string())
    }
}

/// Communication transport selection, honored by `World::run` and the
/// session default.
pub const CGNN_BACKEND: EnvKnob = EnvKnob {
    name: "CGNN_BACKEND",
    default: "threads",
    doc: "Comm transport: `threads` (one OS thread per rank), `serial` \
          (deterministic round-robin loopback), `proc` (one OS process \
          per rank), or `socket` (one process per rank over TCP).",
};

/// Cross-process launch handshake: this process's rank index. Set by the
/// `proc`/`socket` spawner on re-exec'd children, or by an operator for
/// a manual (multi-machine) launch.
pub const CGNN_RANK: EnvKnob = EnvKnob {
    name: "CGNN_RANK",
    default: "unset (this process spawns the world)",
    doc: "Cross-process handshake: rank index of this process; unset \
          means \"spawn the world and run rank 0 inline\".",
};

/// Cross-process launch handshake: world size, cross-checked against the
/// program's own launch call.
pub const CGNN_WORLD: EnvKnob = EnvKnob {
    name: "CGNN_WORLD",
    default: "unset",
    doc: "Cross-process handshake: expected world size (cross-checked \
          against the program's launch; divergence fails loudly).",
};

/// Cross-process launch handshake: marks a re-exec'd child (as opposed to
/// a manually launched rank), which reports failures via `rank{r}.fail`
/// and exits when its rank completes.
pub const CGNN_LAUNCHED: EnvKnob = EnvKnob {
    name: "CGNN_LAUNCHED",
    default: "unset",
    doc: "Cross-process handshake: set (to `1`) on re-exec'd child ranks; \
          unset for operator-run (manual multi-machine) ranks.",
};

/// Cross-process launch handshake: which launch (1-based sequence number
/// within the program/scope) a re-exec'd child should join; earlier
/// launches are replayed in-process on the serial backend.
pub const CGNN_PROC_SEQ: EnvKnob = EnvKnob {
    name: "CGNN_PROC_SEQ",
    default: "1",
    doc: "Cross-process handshake: launch sequence number the child \
          joins; earlier launches replay deterministically in-process.",
};

/// Cross-process rendezvous directory (Unix sockets, child logs,
/// `rank{r}.fail` reports). For the spawner a base directory; for a
/// joining rank the concrete per-launch directory.
pub const CGNN_PROC_DIR: EnvKnob = EnvKnob {
    name: "CGNN_PROC_DIR",
    default: "system temp dir",
    doc: "Cross-process rendezvous directory (UDS mesh sockets, child \
          logs, failure reports); spawner treats it as a base directory.",
};

/// TCP rendezvous address of the socket backend's rank 0.
pub const CGNN_SOCKET_ADDR: EnvKnob = EnvKnob {
    name: "CGNN_SOCKET_ADDR",
    default: "127.0.0.1:0 (spawner picks an ephemeral port)",
    doc: "Socket-backend rendezvous address (`host:port`) where rank 0 \
          listens; required for manual multi-machine launches.",
};

/// Per-rank kernel worker budget applied by every multi-rank launcher
/// when no explicit worker count is pinned.
pub const CGNN_THREAD_BUDGET: EnvKnob = EnvKnob {
    name: "CGNN_THREAD_BUDGET",
    default: "auto (max(1, cores/world))",
    doc: "Per-rank kernel worker budget: `auto` clamps each rank to \
          `max(1, cores/world)`, `off` disables the clamp, `<n>` forces \
          a count; an explicit `CGNN_NUM_THREADS` pin always wins.",
};

/// Kernel worker count for the parallel tensor kernels (results are
/// worker-count-invariant by construction; this only changes timing).
pub const CGNN_NUM_THREADS: EnvKnob = EnvKnob {
    name: "CGNN_NUM_THREADS",
    default: "all cores, thread-budgeted per rank",
    doc: "Tensor-kernel worker count; results are bit-identical at any \
          value (see docs/PERFORMANCE.md). Falls back to \
          `RAYON_NUM_THREADS`; when unset, multi-rank launchers budget \
          each rank to `max(1, cores/world)` (`CGNN_THREAD_BUDGET`).",
};

/// Epoch/iteration count used by the examples and figure binaries.
pub const CGNN_ITERS: EnvKnob = EnvKnob {
    name: "CGNN_ITERS",
    default: "30\u{2013}100 (per binary)",
    doc: "Training epochs in the examples and `fig6_right`.",
};

/// Cubic element count per axis for the examples and figure binaries.
pub const CGNN_ELEMS: EnvKnob = EnvKnob {
    name: "CGNN_ELEMS",
    default: "8\u{2013}12 (per binary)",
    doc: "Elements per axis of the Taylor-Green mesh in examples and \
          figure binaries (paper scale: 32).",
};

/// Rank-sweep cap for `fig6_left`.
pub const CGNN_MAXR: EnvKnob = EnvKnob {
    name: "CGNN_MAXR",
    default: "64",
    doc: "Largest rank count swept by `fig6_left`.",
};

/// `hotpath` bench: elements per axis.
pub const CGNN_BENCH_ELEMS: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_ELEMS",
    default: "6",
    doc: "`hotpath` bench mesh size (elements per axis).",
};

/// `hotpath` bench: polynomial order.
pub const CGNN_BENCH_POLY: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_POLY",
    default: "2",
    doc: "`hotpath` bench GLL polynomial order.",
};

/// `hotpath` bench: timed steps per repetition.
pub const CGNN_BENCH_STEPS: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_STEPS",
    default: "10",
    doc: "`hotpath` bench timed training steps per repetition.",
};

/// `hotpath` bench: warmup steps per cell.
pub const CGNN_BENCH_WARMUP: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_WARMUP",
    default: "2",
    doc: "`hotpath` bench warmup steps before timing.",
};

/// `hotpath` bench: repetitions (best is reported).
pub const CGNN_BENCH_REPS: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_REPS",
    default: "3",
    doc: "`hotpath` bench repetitions; the fastest is recorded.",
};

/// `hotpath` bench: comma-separated rank counts to sweep.
pub const CGNN_BENCH_RANKS: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_RANKS",
    default: "1,2,4,8",
    doc: "`hotpath` bench comma-separated rank counts.",
};

/// `hotpath` bench: model size preset.
pub const CGNN_BENCH_MODEL: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_MODEL",
    default: "small",
    doc: "`hotpath` bench model preset (`small` or `large`).",
};

/// `hotpath` bench: comma-separated backends for the weak-scaling sweep.
pub const CGNN_BENCH_BACKENDS: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_BACKENDS",
    default: "threads,proc",
    doc: "`hotpath` bench backends swept by the weak-scaling section \
          (any of `threads`, `serial`, `proc`, `socket`).",
};

/// `hotpath` bench: internal parameter channel for re-exec'd weak-scaling
/// worker ranks (set by the bench itself, not by operators).
pub const CGNN_BENCH_WEAK: EnvKnob = EnvKnob {
    name: "CGNN_BENCH_WEAK",
    default: "unset (internal)",
    doc: "`hotpath` bench internal: weak-scaling cell parameters passed \
          to re-exec'd worker ranks; not set by hand.",
};

/// `cgnn-serve`: TCP bind address of the inference server.
pub const CGNN_SERVE_ADDR: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_ADDR",
    default: "127.0.0.1:7878",
    doc: "`cgnn-serve` bind address (`host:port`; port 0 picks an \
          ephemeral port, printed at startup).",
};

/// `cgnn-serve`: number of warm model replicas in the data plane.
pub const CGNN_SERVE_REPLICAS: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_REPLICAS",
    default: "1",
    doc: "`cgnn-serve` warm replica count (each owns a loopback trainer \
          and pooled tape).",
};

/// `cgnn-serve`: micro-batch size cap per forward pass.
pub const CGNN_SERVE_MAX_BATCH: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_MAX_BATCH",
    default: "32",
    doc: "`cgnn-serve` micro-batching cap: a replica drains up to this \
          many queued requests into one stacked forward pass.",
};

/// `cgnn-serve`: how long a partial micro-batch waits for more requests.
pub const CGNN_SERVE_BATCH_WAIT_US: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_BATCH_WAIT_US",
    default: "2000",
    doc: "`cgnn-serve` micro-batch deadline in microseconds: a partial \
          batch launches after waiting this long for more work.",
};

/// `cgnn-serve`: bounded request-queue capacity (backpressure point).
pub const CGNN_SERVE_QUEUE_CAP: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_QUEUE_CAP",
    default: "256",
    doc: "`cgnn-serve` request queue capacity; a full queue answers \
          `503` instead of buffering unboundedly.",
};

/// `cgnn-serve`: checkpoint-directory poll period for hot reload.
pub const CGNN_SERVE_POLL_MS: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_POLL_MS",
    default: "500",
    doc: "`cgnn-serve` control-plane poll period (ms) for new \
          checkpoints in `CGNN_SERVE_CKPT_DIR`.",
};

/// `cgnn-serve`: checkpoint directory watched for hot reload.
pub const CGNN_SERVE_CKPT_DIR: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_CKPT_DIR",
    default: "unset (serve seeded weights)",
    doc: "`cgnn-serve` checkpoint directory: the newest `step-*.ckpt` is \
          loaded at startup and hot-swapped as training writes more.",
};

/// `cgnn-serve`: model architecture preset.
pub const CGNN_SERVE_MODEL: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_MODEL",
    default: "small",
    doc: "`cgnn-serve` model preset (`small` or `large`); must match the \
          checkpoints being served.",
};

/// `cgnn-serve` / `servebench`: elements per axis of the served mesh.
pub const CGNN_SERVE_ELEMS: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_ELEMS",
    default: "4",
    doc: "Elements per axis of the mesh `cgnn-serve` and the `servebench` \
          binary serve predictions on (GLL order fixed at 2).",
};

/// `serve_client` / `servebench`: concurrent load-generator connections.
pub const CGNN_SERVE_BENCH_CLIENTS: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_BENCH_CLIENTS",
    default: "2",
    doc: "`servebench` concurrent load-generator connections (pipelined at \
          saturation); the `serve_client` example defaults to 4.",
};

/// `serve_client` / `servebench`: requests issued per client connection.
pub const CGNN_SERVE_BENCH_REQS: EnvKnob = EnvKnob {
    name: "CGNN_SERVE_BENCH_REQS",
    default: "400",
    doc: "`servebench` requests per client connection; the `serve_client` \
          example defaults to 20.",
};

/// Liveness-probe heartbeat of the threads comm backend: how often a
/// blocked barrier/receive re-checks the dead set.
pub const CGNN_FAULT_HEARTBEAT_MS: EnvKnob = EnvKnob {
    name: "CGNN_FAULT_HEARTBEAT_MS",
    default: "25",
    doc: "Threads-backend liveness heartbeat (ms): how often blocked \
          barriers and receives re-check for dead peers.",
};

/// Elastic-recovery budget: how many world rebuilds
/// `Session::train_epochs_elastic` attempts before giving up.
pub const CGNN_FAULT_MAX_RETRIES: EnvKnob = EnvKnob {
    name: "CGNN_FAULT_MAX_RETRIES",
    default: "4",
    doc: "Elastic training recovery budget: world rebuilds attempted \
          before `RetriesExhausted`.",
};

/// Seed for the chaos suite's seeded fault plans (CI sweeps it).
pub const CGNN_FAULT_SEED: EnvKnob = EnvKnob {
    name: "CGNN_FAULT_SEED",
    default: "0",
    doc: "Chaos-suite seed for `FaultPlan::seeded` (picks the victim \
          rank and kill op); any fixed value replays the same failure.",
};

/// Fallback worker-count knob honored by the vendored rayon shim when
/// `CGNN_NUM_THREADS` is unset (upstream rayon compatibility).
pub const RAYON_NUM_THREADS: EnvKnob = EnvKnob {
    name: "RAYON_NUM_THREADS",
    default: "unset",
    doc: "Upstream-rayon-compatible fallback for `CGNN_NUM_THREADS`.",
};

/// Every declared knob, in presentation order (the README table order).
pub const KNOBS: &[&EnvKnob] = &[
    &CGNN_BACKEND,
    &CGNN_RANK,
    &CGNN_WORLD,
    &CGNN_LAUNCHED,
    &CGNN_PROC_SEQ,
    &CGNN_PROC_DIR,
    &CGNN_SOCKET_ADDR,
    &CGNN_NUM_THREADS,
    &CGNN_THREAD_BUDGET,
    &CGNN_ITERS,
    &CGNN_ELEMS,
    &CGNN_MAXR,
    &CGNN_BENCH_ELEMS,
    &CGNN_BENCH_POLY,
    &CGNN_BENCH_STEPS,
    &CGNN_BENCH_WARMUP,
    &CGNN_BENCH_REPS,
    &CGNN_BENCH_RANKS,
    &CGNN_BENCH_MODEL,
    &CGNN_BENCH_BACKENDS,
    &CGNN_BENCH_WEAK,
    &CGNN_SERVE_ADDR,
    &CGNN_SERVE_REPLICAS,
    &CGNN_SERVE_MAX_BATCH,
    &CGNN_SERVE_BATCH_WAIT_US,
    &CGNN_SERVE_QUEUE_CAP,
    &CGNN_SERVE_POLL_MS,
    &CGNN_SERVE_CKPT_DIR,
    &CGNN_SERVE_MODEL,
    &CGNN_SERVE_ELEMS,
    &CGNN_SERVE_BENCH_CLIENTS,
    &CGNN_SERVE_BENCH_REQS,
    &CGNN_FAULT_HEARTBEAT_MS,
    &CGNN_FAULT_MAX_RETRIES,
    &CGNN_FAULT_SEED,
    &RAYON_NUM_THREADS,
];

/// The default per-rank kernel worker budget for `world` concurrent
/// ranks on `cores` hardware threads: `max(1, cores / world)`, so
/// `ranks × workers ≤ cores` and kernel parallelism composes with rank
/// parallelism instead of contending.
///
/// This is the policy the multi-rank launchers in `cgnn-comm` apply
/// (re-derived there because `cgnn-comm` sits below this crate); this
/// copy is the documented, cross-checked formula. It is a pure function
/// — the launchers resolve `cores` and the `CGNN_THREAD_BUDGET` /
/// `CGNN_NUM_THREADS` overrides themselves.
pub fn per_rank_thread_budget(cores: usize, world: usize) -> usize {
    (cores / world.max(1)).max(1)
}

/// Render the registry as the markdown table embedded in the README
/// ("Environment knobs" section). A unit test asserts the README copy is
/// byte-identical, so editing either side without the other fails CI.
pub fn knobs_markdown_table() -> String {
    let mut out = String::from("| Variable | Default | Controls |\n|---|---|---|\n");
    for k in KNOBS {
        out.push_str(&format!("| `{}` | {} | {} |\n", k.name, k.default, k.doc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_names_are_unique_and_well_formed() {
        let mut names: Vec<&str> = KNOBS.iter().map(|k| k.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate knob names");
        for k in KNOBS {
            assert!(
                k.name.starts_with("CGNN_") || k.name == "RAYON_NUM_THREADS",
                "unexpected knob prefix: {}",
                k.name
            );
            assert!(!k.doc.is_empty(), "{} has no doc line", k.name);
            assert!(!k.default.is_empty(), "{} has no default", k.name);
        }
    }

    #[test]
    fn usize_or_parses_and_defaults() {
        // Use a name that is never set in CI.
        let knob = EnvKnob {
            name: "CGNN_TEST_UNSET_KNOB",
            default: "7",
            doc: "test",
        };
        assert_eq!(knob.usize_or(7), 7);
        assert_eq!(knob.string_or("x"), "x");
        assert!(knob.lookup().is_none());
    }

    #[test]
    fn thread_budget_formula() {
        assert_eq!(per_rank_thread_budget(8, 4), 2);
        assert_eq!(per_rank_thread_budget(8, 8), 1);
        assert_eq!(per_rank_thread_budget(1, 8), 1, "never below one worker");
        assert_eq!(per_rank_thread_budget(7, 2), 3, "floor division");
        assert_eq!(per_rank_thread_budget(4, 0), 4, "degenerate world");
        // The headline constraint: ranks x workers never exceeds cores.
        for cores in 1..=16 {
            for world in 1..=16 {
                assert!(world * per_rank_thread_budget(cores, world) <= cores.max(world));
            }
        }
    }

    #[test]
    fn readme_table_matches_registry() {
        let readme =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
                .expect("README.md at workspace root");
        let table = knobs_markdown_table();
        assert!(
            readme.contains(&table),
            "README 'Environment knobs' table is out of sync with \
             cgnn_core::config::KNOBS — regenerate it with \
             knobs_markdown_table() (expected block:\n{table})"
        );
    }
}
