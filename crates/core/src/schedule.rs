//! Deterministic epoch scheduling: which samples form which mini-batch in
//! which order, as a pure function of `(seed, epoch)`.
//!
//! Distributed runs stay bit-identical because every rank evaluates the
//! same function locally — no communication, no shared RNG state, no
//! iteration-order dependence on the backend. A resumed run re-derives the
//! same order for the same epoch, which is what makes mid-epoch
//! checkpoint/restore exact (see
//! [`Trainer::train_epoch`](crate::Trainer::train_epoch)).

/// SplitMix64 step: the standard 64-bit finalizing mixer (Steele et al.),
/// used here both to derive per-epoch seeds and to drive the
/// Fisher–Yates shuffle. Self-contained so the schedule never depends on
/// an external RNG's stream stability.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded deterministic shuffler: a Fisher–Yates permutation of
/// `0..n` driven by SplitMix64. Pure — same `(n, seed)` always yields the
/// same permutation, on every platform and backend.
///
/// The draw uses a simple modulo reduction; for the dataset sizes involved
/// (snapshot counts, not cryptography) the bias is irrelevant and
/// determinism is what matters.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    // Warm the mixer so small adjacent seeds do not share prefixes.
    let _ = splitmix64(&mut state);
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// How one epoch walks a dataset: a (possibly shuffled) permutation of the
/// sample indices, chunked into mini-batches of `batch_size` (the last
/// batch may be short).
///
/// The schedule is *stateless*: [`EpochSchedule::batch`] computes any
/// `(epoch, step)` batch directly, so training can resume at an arbitrary
/// optimizer step and reproduce the uninterrupted order bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSchedule {
    /// Number of samples in the dataset.
    pub n_samples: usize,
    /// Samples per optimizer step (the last batch of an epoch may be
    /// smaller).
    pub batch_size: usize,
    /// Shuffle each epoch with a seed derived from `seed` and the epoch
    /// index; `false` keeps canonical `0..n` order every epoch.
    pub shuffle: bool,
    /// Base seed for the per-epoch shuffles.
    pub seed: u64,
}

impl EpochSchedule {
    /// A schedule over `n_samples` samples with mini-batches of
    /// `batch_size`, shuffled per epoch from `seed`.
    ///
    /// # Panics
    /// If `n_samples` or `batch_size` is zero.
    pub fn new(n_samples: usize, batch_size: usize, shuffle: bool, seed: u64) -> Self {
        assert!(n_samples > 0, "schedule over an empty dataset");
        assert!(batch_size > 0, "batch size must be at least 1");
        EpochSchedule {
            n_samples,
            batch_size,
            shuffle,
            seed,
        }
    }

    /// Optimizer steps per epoch: `ceil(n_samples / batch_size)`.
    pub fn steps_per_epoch(&self) -> u64 {
        self.n_samples.div_ceil(self.batch_size) as u64
    }

    /// The sample visiting order of `epoch` (identity when shuffling is
    /// off). Pure function of `(seed, epoch)` — identical on every rank.
    pub fn order(&self, epoch: u64) -> Vec<usize> {
        if self.shuffle {
            // Mix the epoch into the seed so epochs get distinct, but
            // individually reproducible, permutations.
            let mut s = self.seed ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F);
            let epoch_seed = splitmix64(&mut s);
            shuffled_indices(self.n_samples, epoch_seed)
        } else {
            (0..self.n_samples).collect()
        }
    }

    /// The `[lo, hi)` slice of an epoch's order that mini-batch `step`
    /// covers — so a caller iterating a whole epoch can compute
    /// [`EpochSchedule::order`] once and slice it per step instead of
    /// re-shuffling.
    ///
    /// # Panics
    /// If `step` is out of range for an epoch.
    pub fn batch_bounds(&self, step: u64) -> (usize, usize) {
        assert!(step < self.steps_per_epoch(), "step {step} out of epoch");
        let lo = step as usize * self.batch_size;
        (lo, (lo + self.batch_size).min(self.n_samples))
    }

    /// The sample indices of mini-batch `step` (`0..steps_per_epoch`)
    /// within `epoch`.
    ///
    /// # Panics
    /// If `step` is out of range for an epoch.
    pub fn batch(&self, epoch: u64, step: u64) -> Vec<usize> {
        let (lo, hi) = self.batch_bounds(step);
        self.order(epoch)[lo..hi].to_vec()
    }

    /// Decompose a global optimizer-step count into `(epoch,
    /// step_within_epoch)` — how [`Trainer::train_epoch`] locates itself
    /// after a checkpoint restore.
    ///
    /// [`Trainer::train_epoch`]: crate::Trainer::train_epoch
    pub fn position(&self, global_step: u64) -> (u64, u64) {
        let spe = self.steps_per_epoch();
        (global_step / spe, global_step % spe)
    }
}

/// What one epoch of training produced: per-batch consistent losses and
/// their mean. Returned by [`Trainer::train_epoch`](crate::Trainer::train_epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Global optimizer-step count *before* the first batch of this report
    /// (non-zero mid-epoch when resuming from a checkpoint).
    pub first_step: u64,
    /// Pre-update consistent loss of every batch run in this epoch, in
    /// schedule order.
    pub batch_losses: Vec<f64>,
}

impl EpochReport {
    /// Mean of the per-batch losses (the "epoch loss" curves the examples
    /// print).
    pub fn mean_loss(&self) -> f64 {
        self.batch_losses.iter().sum::<f64>() / self.batch_losses.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let a = shuffled_indices(17, 42);
        let b = shuffled_indices(17, 42);
        assert_eq!(a, b, "same seed must reproduce the order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..17).collect::<Vec<_>>());
        assert_ne!(a, shuffled_indices(17, 43), "seeds must decorrelate");
    }

    #[test]
    fn epochs_get_distinct_reproducible_orders() {
        let s = EpochSchedule::new(8, 3, true, 7);
        assert_eq!(s.steps_per_epoch(), 3);
        assert_ne!(s.order(0), s.order(1), "epochs should reshuffle");
        assert_eq!(s.order(5), s.order(5));
        // Batches tile the epoch order exactly.
        let order = s.order(2);
        let tiled: Vec<usize> = (0..3).flat_map(|b| s.batch(2, b)).collect();
        assert_eq!(tiled, order);
        assert_eq!(s.batch(2, 2).len(), 2, "last batch is short: 8 = 3+3+2");
    }

    #[test]
    fn unshuffled_schedule_is_canonical_order() {
        let s = EpochSchedule::new(5, 2, false, 999);
        assert_eq!(s.order(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.order(3), s.order(0));
        assert_eq!(s.batch(1, 2), vec![4]);
    }

    #[test]
    fn position_decomposes_global_steps() {
        let s = EpochSchedule::new(4, 2, true, 0);
        assert_eq!(s.position(0), (0, 0));
        assert_eq!(s.position(3), (1, 1));
        assert_eq!(s.position(4), (2, 0));
    }
}
