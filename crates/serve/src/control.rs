//! The serving control plane: owns the published parameter set, watches a
//! checkpoint directory, and hot-swaps new parameters into the replica
//! pool **between** micro-batches.
//!
//! Publication is a generation-stamped `Arc<ParamSet>` slot: the control
//! plane validates a candidate checkpoint against the served architecture
//! (the same eager probe [`cgnn_session::Session::restore`] uses), then
//! atomically bumps the generation. Replicas compare generations between
//! batches and install the new parameters before their next forward pass,
//! so every individual request is served by exactly one parameter set —
//! in-flight requests are never torn across a reload.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cgnn_core::{ConsistentGnn, GnnConfig};
use cgnn_session::CheckpointPolicy;
use cgnn_tensor::ParamSet;

use crate::stats::ServeStats;

/// State shared between the control plane, the HTTP workers, and the
/// replica pool.
pub struct ControlShared {
    /// Bumped on every parameter publication; replicas install the
    /// published set when their local generation falls behind.
    pub generation: AtomicU64,
    /// Training step of the published parameters (0 for seeded weights).
    pub model_step: AtomicU64,
    /// True once draining started: `/predict` refuses new work (`503`)
    /// while queued requests finish.
    pub draining: AtomicBool,
    /// True once shutdown started: background threads exit their loops.
    pub shutdown: AtomicBool,
    params: Mutex<Arc<ParamSet>>,
}

impl ControlShared {
    fn new(initial: ParamSet) -> Self {
        ControlShared {
            generation: AtomicU64::new(1),
            model_step: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            params: Mutex::new(Arc::new(initial)),
        }
    }

    /// The currently published parameter set.
    pub fn current_params(&self) -> Arc<ParamSet> {
        Arc::clone(&self.params.lock().expect("serve param slot poisoned"))
    }

    fn publish(&self, params: ParamSet, step: u64) {
        *self.params.lock().expect("serve param slot poisoned") = Arc::new(params);
        self.model_step.store(step, Ordering::Release);
        // Bump last: a replica that observes the new generation is
        // guaranteed to read the new slot and step.
        self.generation.fetch_add(1, Ordering::Release);
    }
}

/// Outcome of one reload scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// True when a new checkpoint was published.
    pub reloaded: bool,
    /// Training step of the parameters now being served.
    pub step: u64,
}

/// The control plane proper: architecture recipe + watched directory.
pub struct ControlPlane {
    shared: Arc<ControlShared>,
    config: GnnConfig,
    seed: u64,
    dir: Option<PathBuf>,
    /// Step of the newest checkpoint already loaded from `dir`, so the
    /// watcher is idempotent between training saves.
    loaded_step: Mutex<Option<u64>>,
}

impl ControlPlane {
    /// Seed the initial parameter set for `config` and, when `dir` is
    /// set, immediately load the newest checkpoint found there.
    ///
    /// A present-but-unloadable newest checkpoint is a startup **error**
    /// (serving seeded weights when the operator pointed at real ones
    /// would be silent corruption); an empty or missing directory serves
    /// seeded weights and waits for training to produce checkpoints.
    pub fn new(config: GnnConfig, seed: u64, dir: Option<PathBuf>) -> std::io::Result<Self> {
        let (params, _) = ConsistentGnn::seeded(config, seed);
        let plane = ControlPlane {
            shared: Arc::new(ControlShared::new(params)),
            config,
            seed,
            dir,
            loaded_step: Mutex::new(None),
        };
        plane.reload()?;
        Ok(plane)
    }

    /// Handle to the shared serving state.
    pub fn shared(&self) -> Arc<ControlShared> {
        Arc::clone(&self.shared)
    }

    /// Scan the watched directory once and publish the newest checkpoint
    /// if it is newer than what is being served. No-op without a watched
    /// directory. Validation failures leave the served parameters
    /// untouched and return the error.
    ///
    /// The scan skips corrupt files (e.g. a checkpoint the trainer died
    /// in the middle of writing) in favor of the newest one that parses;
    /// but when corrupt files exist and **nothing** valid remains, that
    /// is an error — the operator pointed at real checkpoints, so
    /// silently serving seeded weights would be corruption.
    pub fn reload(&self) -> std::io::Result<ReloadOutcome> {
        let serving = ReloadOutcome {
            reloaded: false,
            step: self.shared.model_step.load(Ordering::Acquire),
        };
        let Some(dir) = &self.dir else {
            return Ok(serving);
        };
        let report = CheckpointPolicy::latest_report(dir)?;
        let Some(path) = report.valid else {
            if let Some(corpse) = report.rejected.first() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("no valid checkpoint in {}: {corpse}", dir.display()),
                ));
            }
            return Ok(serving);
        };
        let step = CheckpointPolicy::step_of(&path).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparsable checkpoint name: {}", path.display()),
            )
        })?;
        let mut loaded = self.loaded_step.lock().expect("serve reload slot poisoned");
        if *loaded == Some(step) {
            return Ok(serving);
        }
        let (params, opt) = cgnn_tensor::load_checkpoint(&path)?;
        // Probe-restore into a freshly seeded replica of the served
        // architecture: verifies names and shapes without touching the
        // live slot (mirrors Session::restore).
        let (mut probe, _) = ConsistentGnn::seeded(self.config, self.seed);
        cgnn_tensor::restore_into(&mut probe, &params)?;
        opt.validate_for(&probe)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.shared.publish(params, step);
        *loaded = Some(step);
        Ok(ReloadOutcome {
            reloaded: true,
            step,
        })
    }

    /// Spawn the polling watcher thread: every `poll`, rescan the watched
    /// directory and publish newer checkpoints, until shutdown. Reload
    /// failures are counted in `stats.reload_errors` and the previous
    /// parameters keep serving.
    pub fn spawn_watcher(
        self: &Arc<Self>,
        poll: Duration,
        stats: Arc<ServeStats>,
    ) -> std::thread::JoinHandle<()> {
        let plane = Arc::clone(self);
        std::thread::Builder::new()
            .name("cgnn-serve-watch".to_string())
            .spawn(move || {
                let tick = Duration::from_millis(25).min(poll);
                let mut slept = Duration::ZERO;
                while !plane.shared.shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    slept += tick;
                    if slept < poll {
                        continue;
                    }
                    slept = Duration::ZERO;
                    match plane.reload() {
                        Ok(out) if out.reloaded => {
                            stats.reloads_applied.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
            .expect("failed to spawn the checkpoint watcher thread")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cgnn_serve_ctl_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn empty_dir_serves_seeded_weights() {
        let dir = tmp_dir("empty");
        let plane = ControlPlane::new(GnnConfig::small(), 7, Some(dir.clone())).expect("startup");
        let out = plane.reload().expect("reload");
        assert!(!out.reloaded);
        assert_eq!(out.step, 0);
        assert_eq!(plane.shared().generation.load(Ordering::Acquire), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reload_publishes_newer_checkpoints_once() {
        use cgnn_comm::LoopbackBackend;
        use cgnn_core::HaloContext;
        let dir = tmp_dir("reload");
        let policy = CheckpointPolicy::every(1, &dir);
        let ctx = HaloContext::single(LoopbackBackend::comm());
        let trainer = cgnn_core::Trainer::new(GnnConfig::small(), 9, 1e-3, ctx);
        cgnn_tensor::save_checkpoint(
            &trainer.params,
            &trainer.opt.state(),
            policy.path_for_step(3),
        )
        .expect("save");

        let plane = ControlPlane::new(GnnConfig::small(), 7, Some(dir.clone())).expect("startup");
        // Startup already consumed step 3.
        assert_eq!(plane.shared().model_step.load(Ordering::Acquire), 3);
        let again = plane.reload().expect("reload");
        assert!(!again.reloaded, "same checkpoint must not republish");

        cgnn_tensor::save_checkpoint(
            &trainer.params,
            &trainer.opt.state(),
            policy.path_for_step(5),
        )
        .expect("save");
        let newer = plane.reload().expect("reload");
        assert!(newer.reloaded);
        assert_eq!(newer.step, 5);
        assert_eq!(plane.shared().generation.load(Ordering::Acquire), 3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mismatched_architecture_is_refused() {
        use cgnn_comm::LoopbackBackend;
        use cgnn_core::HaloContext;
        let dir = tmp_dir("mismatch");
        let policy = CheckpointPolicy::every(1, &dir);
        let ctx = HaloContext::single(LoopbackBackend::comm());
        let trainer = cgnn_core::Trainer::new(GnnConfig::large(), 9, 1e-3, ctx);
        cgnn_tensor::save_checkpoint(
            &trainer.params,
            &trainer.opt.state(),
            policy.path_for_step(1),
        )
        .expect("save");
        // A small-architecture server pointed at a large checkpoint must
        // refuse to start rather than serve seeded weights silently.
        assert!(ControlPlane::new(GnnConfig::small(), 7, Some(dir.clone())).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
