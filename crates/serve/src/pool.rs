//! The serving data plane: a bounded request queue drained by a pool of
//! warm model replicas with **dynamic micro-batching**.
//!
//! Each replica owns a persistent [`Trainer`] on the single-rank
//! [`LoopbackBackend`] (steady-state tape workspace included, so serving
//! draws recycled buffers exactly like training does). A replica assembles
//! a batch by taking the first queued request, then draining more until
//! either `max_batch` requests are in hand or `batch_wait` elapses — and
//! runs **one** stacked forward pass over the disjoint-union graph
//! ([`Trainer::predict_batch`]). Per-request results are bit-identical to
//! singleton passes, so batching is purely a throughput decision.
//!
//! Backpressure is structural: the queue is a `sync_channel(queue_cap)`
//! and the HTTP layer uses `try_send`, so a saturated pool answers `503`
//! immediately instead of buffering unboundedly.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cgnn_comm::LoopbackBackend;
use cgnn_core::{GnnConfig, HaloContext, RankData, Trainer};
use cgnn_graph::LocalGraph;

use crate::control::ControlShared;
use crate::stats::ServeStats;

/// One queued inference request.
#[derive(Debug)]
pub struct PredictJob {
    /// Row-major `[n_local, NODE_FEATS]` input node features.
    pub x: Vec<f64>,
    /// Where the replica sends the reply (dropped replies mean the client
    /// went away; they are ignored).
    pub resp: mpsc::Sender<PredictReply>,
}

/// One reply from a replica.
#[derive(Debug)]
pub struct PredictReply {
    /// Row-major `[n_local, node_out]` prediction, or a client-side error.
    pub result: Result<Vec<f64>, String>,
    /// Training step of the parameter set that served this request.
    pub model_step: u64,
}

/// Handle to the running replica pool.
#[derive(Debug)]
pub struct ReplicaPool {
    tx: SyncSender<PredictJob>,
    // Keeps the queue alive even with zero replicas (so senders observe
    // `Full`, not `Disconnected`) and hands each replica its turn at
    // batch assembly.
    _rx: Arc<Mutex<Receiver<PredictJob>>>,
    replicas: Vec<std::thread::JoinHandle<()>>,
}

/// How long an idle replica waits on the queue before re-checking the
/// shutdown flag and the published parameter generation.
const IDLE_TICK: Duration = Duration::from_millis(50);

impl ReplicaPool {
    /// Spawn `replicas` warm replicas draining a bounded queue of
    /// `queue_cap` requests with micro-batch parameters `max_batch` /
    /// `batch_wait`. Zero replicas is a valid (test) configuration: the
    /// queue accepts `queue_cap` requests and then rejects.
    pub fn spawn(
        graph: Arc<LocalGraph>,
        config: GnnConfig,
        shared: Arc<ControlShared>,
        stats: Arc<ServeStats>,
        replicas: usize,
        max_batch: usize,
        batch_wait: Duration,
        queue_cap: usize,
    ) -> ReplicaPool {
        assert!(queue_cap > 0, "the request queue needs at least one slot");
        assert!(max_batch > 0, "micro-batches need at least one request");
        let (tx, rx) = mpsc::sync_channel(queue_cap);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..replicas)
            .map(|i| {
                let graph = Arc::clone(&graph);
                let shared = Arc::clone(&shared);
                let stats = Arc::clone(&stats);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("cgnn-serve-rep{i}"))
                    .spawn(move || {
                        replica_loop(graph, config, shared, stats, rx, max_batch, batch_wait)
                    })
                    .expect("failed to spawn a serve replica thread")
            })
            .collect();
        ReplicaPool {
            tx,
            _rx: rx,
            replicas: handles,
        }
    }

    /// Clone of the bounded submission side of the queue.
    pub fn sender(&self) -> SyncSender<PredictJob> {
        self.tx.clone()
    }

    /// Drop the submission side and join every replica. Queued requests
    /// are still served before the replicas exit (graceful drain).
    pub fn shutdown(self) {
        drop(self.tx);
        drop(self._rx);
        for handle in self.replicas {
            handle.join().expect("a serve replica thread panicked");
        }
    }
}

/// Collect one micro-batch: block for the first job (bounded by
/// [`IDLE_TICK`] so flags stay fresh), then drain until `max_batch` or the
/// `batch_wait` deadline. Returns `(batch, disconnected)`.
fn collect_batch(
    rx: &Mutex<Receiver<PredictJob>>,
    max_batch: usize,
    batch_wait: Duration,
) -> (Vec<PredictJob>, bool) {
    let rx = rx.lock().expect("serve queue mutex poisoned");
    let first = match rx.recv_timeout(IDLE_TICK) {
        Ok(job) => job,
        Err(RecvTimeoutError::Timeout) => return (Vec::new(), false),
        Err(RecvTimeoutError::Disconnected) => return (Vec::new(), true),
    };
    let mut batch = vec![first];
    let deadline = Instant::now() + batch_wait;
    while batch.len() < max_batch {
        let now = Instant::now();
        let job = if now >= deadline {
            match rx.try_recv() {
                Ok(job) => job,
                Err(_) => break,
            }
        } else {
            match rx.recv_timeout(deadline - now) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => return (batch, true),
            }
        };
        batch.push(job);
    }
    (batch, false)
}

fn replica_loop(
    graph: Arc<LocalGraph>,
    config: GnnConfig,
    shared: Arc<ControlShared>,
    stats: Arc<ServeStats>,
    rx: Arc<Mutex<Receiver<PredictJob>>>,
    max_batch: usize,
    batch_wait: Duration,
) {
    let ctx = HaloContext::single(LoopbackBackend::comm());
    let mut trainer = Trainer::new(config, 0, 1e-3, ctx);
    let mut generation = 0u64; // behind the initial publication: installs on entry
    let mut model_step = 0u64;
    let expect_rows = graph.n_local() * cgnn_graph::NODE_FEATS;
    loop {
        // Install newly published parameters between batches — never
        // mid-pass, so each request is served by exactly one parameter
        // set.
        let published = shared.generation.load(Ordering::Acquire);
        if published != generation {
            let params = shared.current_params();
            cgnn_tensor::restore_into(&mut trainer.params, &params)
                .expect("published parameters no longer match the served architecture");
            generation = published;
            model_step = shared.model_step.load(Ordering::Acquire);
        }

        let (batch, disconnected) = collect_batch(&rx, max_batch, batch_wait);
        if !batch.is_empty() {
            stats
                .queue_depth
                .fetch_sub(batch.len() as u64, Ordering::Relaxed);
            stats.record_batch(batch.len());
            serve_batch(&trainer, &graph, expect_rows, batch, model_step);
        }
        // `Disconnected` is only reported once the buffered queue is
        // empty (std mpsc drains stragglers first), so this is a clean
        // graceful-drain exit: every accepted request was served.
        if disconnected {
            return;
        }
    }
}

/// Run one stacked forward pass and fan the per-request rows back out.
fn serve_batch(
    trainer: &Trainer,
    graph: &Arc<LocalGraph>,
    expect_rows: usize,
    batch: Vec<PredictJob>,
    model_step: u64,
) {
    // Malformed frames were already rejected by the HTTP layer; a length
    // mismatch here means the caller bypassed it, so answer per-request
    // errors rather than poisoning the whole batch.
    let mut data = Vec::with_capacity(batch.len());
    let mut senders = Vec::with_capacity(batch.len());
    for job in batch {
        if job.x.len() != expect_rows {
            let _ = job.resp.send(PredictReply {
                result: Err(format!(
                    "expected {expect_rows} feature values, got {}",
                    job.x.len()
                )),
                model_step,
            });
            continue;
        }
        let x = job.x;
        data.push(RankData::new(Arc::clone(graph), x.clone(), x));
        senders.push(job.resp);
    }
    if data.is_empty() {
        return;
    }
    let refs: Vec<&RankData> = data.iter().collect();
    let outputs = trainer.predict_batch(&refs);
    for (sender, out) in senders.into_iter().zip(outputs) {
        // A dropped receiver means the client disconnected mid-flight;
        // nothing to do.
        let _ = sender.send(PredictReply {
            result: Ok(out.data().to_vec()),
            model_step,
        });
    }
}
