//! `servebench`: closed-loop load benchmark of the `cgnn-serve` inference
//! plane, tracking the micro-batching payoff in-tree.
//!
//! For each micro-batch cap in `{1, 8, 32}` the bench starts a fresh
//! in-process server (one replica, ephemeral port) and drives it with
//! `CGNN_SERVE_BENCH_CLIENTS` concurrent keep-alive connections issuing
//! `CGNN_SERVE_BENCH_REQS` binary `/predict` requests each, in two
//! phases: a **closed-loop** phase (one in-flight request per connection)
//! for per-request latency percentiles, then a **pipelined saturation**
//! phase (every connection sends all its requests before draining the
//! responses) for throughput — the standard latency-run/throughput-run
//! split, so neither number distorts the other. Results are written to
//! `BENCH_serve.json` at the repo root. Regenerate with:
//!
//! ```sh
//! cargo run --release -p cgnn-serve --bin servebench
//! ```
//!
//! Batching wins by amortizing per-pass fixed costs — dominated by the
//! per-op dispatch and synchronization of the parallel kernel path
//! (`cgnn-tensor`'s worker pool, the default on any multi-core host) —
//! over the batch, and by giving that pool enough rows to fill it: a
//! singleton pass over the 27-node serving mesh splits into only 2 row
//! chunks, so at most 2 workers ever have work, while a 32-stacked pass
//! (864 rows, 54 chunks) keeps the whole pool busy. To keep the tracked
//! numbers reproducible the bench pins `CGNN_NUM_THREADS=6` when unset —
//! a small production pool the singleton path demonstrably cannot fill;
//! worker count never affects results, only speed (`docs/PERFORMANCE.md`
//! documents the worker-count-invariant chunking contract). It uses a
//! single spectral element (`CGNN_SERVE_ELEMS`, default 1 here — the
//! many-small-queries regime the serving plane is built for) and a few
//! pipelined connections (default 2), each streaming enough requests
//! (default 400) that the largest cap fills at saturation. Predictions
//! are bit-identical at every cap
//! ([`cgnn_core::Trainer::predict_batch`]); the sweep is a pure
//! throughput comparison under one fixed server configuration.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cgnn_core::config as knobs;
use cgnn_serve::{HttpClient, ServeConfig, Server};
use serde_json::json;

struct CaseResult {
    max_batch: usize,
    total_requests: usize,
    wall_s: f64,
    rps: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    batches: u64,
    mean_batch: f64,
    observed_max_batch: usize,
}

fn client_run(addr: SocketAddr, body: Vec<u8>, reqs: usize) -> Vec<u64> {
    let mut client = HttpClient::connect_retry(addr, Duration::from_secs(10))
        .expect("connect to servebench server");
    let mut lats = Vec::with_capacity(reqs);
    for _ in 0..reqs {
        let t0 = Instant::now();
        let resp = client
            .request("POST", "/predict", &body)
            .expect("predict request failed");
        assert_eq!(resp.status, 200, "predict was not served");
        lats.push(t0.elapsed().as_micros() as u64);
    }
    lats
}

/// Saturation phase: pipeline all `reqs` requests down the connection,
/// then drain the responses. The client round-trip leaves every request's
/// critical path, so the server runs flat out and the measured wall time
/// is its actual service capacity.
fn client_pipeline(addr: SocketAddr, body: Vec<u8>, reqs: usize) {
    let mut client = HttpClient::connect_retry(addr, Duration::from_secs(10))
        .expect("connect to servebench server");
    for _ in 0..reqs {
        client
            .send_request("POST", "/predict", &body)
            .expect("pipelined send failed");
    }
    for _ in 0..reqs {
        let resp = client.read_response().expect("pipelined read failed");
        assert_eq!(resp.status, 200, "predict was not served");
    }
}

fn run_case(max_batch: usize, clients: usize, reqs: usize, elems: usize) -> CaseResult {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        replicas: 1,
        max_batch,
        batch_wait_us: 2000,
        queue_cap: 1024,
        http_workers: clients + 2,
        elems,
        ..ServeConfig::default()
    };
    let server = Server::start(config).expect("start servebench server");
    let addr = server.addr();
    let n_vals = server.n_local() * cgnn_graph::NODE_FEATS;
    // Synthetic but deterministic node features; content is irrelevant to
    // throughput, and every client sends a distinct frame.
    let bodies: Vec<Vec<u8>> = (0..clients)
        .map(|c| {
            let x: Vec<f64> = (0..n_vals)
                .map(|i| ((i + 7 * c) as f64 * 0.01).sin())
                .collect();
            cgnn_serve::http::encode_f64(&x)
        })
        .collect();
    // Warm the replica (first pass pays tape/pool growth) before timing.
    client_run(addr, bodies[0].clone(), 2);

    // Latency phase: closed-loop, one in-flight request per connection,
    // per-request round-trip times.
    let mut lats: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .iter()
            .map(|body| scope.spawn(move || client_run(addr, body.clone(), reqs)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    // Throughput phase: pipelined saturation, wall time only. Batch
    // shape is reported for this phase alone (stats delta), so the
    // closed-loop phase — which caps in-flight work at the client count —
    // does not dilute the saturation batch sizes.
    let pre_batches = server.stats().snapshot().batches;
    let wall0 = Instant::now();
    std::thread::scope(|scope| {
        for body in &bodies {
            scope.spawn(move || client_pipeline(addr, body.clone(), reqs));
        }
    });
    let wall_s = wall0.elapsed().as_secs_f64();
    lats.sort_unstable();
    let pct = |q: f64| lats[((q * (lats.len() - 1) as f64).round() as usize).min(lats.len() - 1)];
    let snap = server.stats().snapshot();
    server.shutdown();
    let total_requests = clients * reqs;
    let batches = (snap.batches - pre_batches).max(1);
    CaseResult {
        max_batch,
        total_requests,
        wall_s,
        rps: total_requests as f64 / wall_s,
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        batches,
        mean_batch: total_requests as f64 / batches as f64,
        observed_max_batch: snap.max_batch(),
    }
}

fn main() {
    // Pin the kernel worker count before the first tensor op resolves it:
    // the committed numbers must not depend on the host's core count, and
    // the parallel kernel path (the multi-core default) is exactly where
    // micro-batching pays — per-op dispatch is the amortized fixed cost,
    // and a singleton pass (2 row chunks) cannot fill a 6-worker pool.
    if knobs::CGNN_NUM_THREADS.lookup().is_none() && knobs::RAYON_NUM_THREADS.lookup().is_none() {
        std::env::set_var(knobs::CGNN_NUM_THREADS.name, "6");
    }
    let kernel_workers = knobs::CGNN_NUM_THREADS.string_or("6");
    // Server-side pipelining means a few streaming connections saturate
    // the replica (each keeps many requests in flight), so the client
    // count models upstream processes, not concurrency pressure.
    let clients = knobs::CGNN_SERVE_BENCH_CLIENTS.usize_or(2);
    let reqs = knobs::CGNN_SERVE_BENCH_REQS.usize_or(400);
    let elems = knobs::CGNN_SERVE_ELEMS.usize_or(1);
    let caps = [1usize, 8, 32];
    // Best-of-reps, same rationale as the hotpath bench: the tracked
    // machine is a shared VM, and client threads plus kernel workers
    // amplify scheduler noise; the best rep is the least-perturbed one.
    // The caps are *interleaved* across reps (1, 8, 32, 1, 8, 32, ...)
    // rather than repeated back-to-back, so a sustained noise episode
    // degrades every cap instead of silently skewing their ratio, and
    // the per-cap best lands in each cap's quietest window.
    const REPS: usize = 9;
    let mut best: Vec<Option<CaseResult>> = caps.iter().map(|_| None).collect();
    for _rep in 0..REPS {
        for (i, &cap) in caps.iter().enumerate() {
            let case = run_case(cap, clients, reqs, elems);
            if best[i].as_ref().is_none_or(|b| case.rps > b.rps) {
                best[i] = Some(case);
            }
        }
    }
    let cases: Vec<CaseResult> = best
        .into_iter()
        .map(|b| b.expect("at least one rep"))
        .collect();
    for case in &cases {
        println!(
            "max_batch={:<3} rps={:>8.1} p50={:>6}us p90={:>6}us p99={:>6}us \
             mean_batch={:.2} (observed max {})",
            case.max_batch,
            case.rps,
            case.p50_us,
            case.p90_us,
            case.p99_us,
            case.mean_batch,
            case.observed_max_batch,
        );
    }
    let rps_1 = cases[0].rps;
    let rps_32 = cases[cases.len() - 1].rps;
    let speedup = rps_32 / rps_1;
    println!("micro-batching speedup (max_batch 32 vs 1): {speedup:.2}x");

    let n_nodes = {
        let mesh = cgnn_mesh::BoxMesh::new((elems, elems, elems), 2, (1.0, 1.0, 1.0), false);
        cgnn_graph::build_global_graph(&mesh).n_local()
    };
    let json = json!({
        "bench": "servebench",
        "description": "closed-loop load test of the cgnn-serve inference plane: \
                        throughput and client-side latency vs the micro-batch cap",
        "mesh": { "elems": elems, "poly": 2, "n_nodes": n_nodes },
        "model": "small",
        "protocol": {
            "clients": clients,
            "requests_per_client": reqs,
            "replicas": 1,
            "batch_wait_us": 2000,
            "reps": REPS,
            "metric": "best-of-reps pipelined-saturation requests/sec, caps \
                       interleaved across reps (shared-VM noise filter); latency \
                       percentiles from a closed-loop phase with one in-flight \
                       request per connection; batch shape from the saturation \
                       phase alone",
            "kernel_workers": kernel_workers,
            "transport": "HTTP/1.1 keep-alive, binary little-endian f64 frames",
            "note": "one fixed server config across caps; batching amortizes \
                     per-op kernel dispatch over the stacked pass and fills the \
                     worker pool (a singleton pass has only 2 row chunks); \
                     predictions are bit-identical at every cap",
        },
        "results": cases.iter().map(|c| json!({
            "max_batch": c.max_batch,
            "total_requests": c.total_requests,
            "wall_s": c.wall_s,
            "rps": c.rps,
            "latency_p50_us": c.p50_us,
            "latency_p90_us": c.p90_us,
            "latency_p99_us": c.p99_us,
            "forward_passes": c.batches,
            "mean_batch": c.mean_batch,
            "observed_max_batch": c.observed_max_batch,
        })).collect::<Vec<_>>(),
        "speedup_batch32_vs_1": speedup,
    });
    let path = "BENCH_serve.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write BENCH_serve.json");
    println!("wrote {path}");
}
