//! # cgnn-serve
//!
//! Surrogate-as-a-service: the trained consistent-GNN surrogate behind a
//! small, dependency-free HTTP/1.1 inference server.
//!
//! Three planes, one per module:
//!
//! * **data plane** ([`pool`]) — a bounded request queue drained by warm
//!   model replicas with *dynamic micro-batching*: up to
//!   `CGNN_SERVE_MAX_BATCH` requests are stacked into one forward pass
//!   over a disjoint-union graph ([`cgnn_core::Trainer::predict_batch`]),
//!   amortizing per-pass fixed costs while staying **bit-identical** to
//!   singleton inference for every request;
//! * **control plane** ([`control`]) — owns the published parameter set,
//!   watches a checkpoint directory, validates new checkpoints against
//!   the served architecture, and hot-swaps them in *between* batches so
//!   in-flight requests are never torn across a reload;
//! * **telemetry** ([`stats`]) — lock-free counters and fixed-bucket
//!   histograms (batch sizes, latency percentiles) folded into JSON at
//!   `/metrics`, on the same snapshot pattern as [`cgnn_comm::stats`].
//!
//! The HTTP layer ([`http`]) is a hand-rolled subset over [`std::net`]
//! (this workspace has no network registry, so no hyper/tokio): a
//! thread-per-acceptor feeding a fixed worker pool over keep-alive
//! connections. `/predict` frames are raw little-endian `f64` matrices —
//! binary in, binary out — so served predictions can be compared
//! bit-for-bit against in-process inference.
//!
//! See `docs/SERVING.md` for the architecture diagram, the endpoint
//! reference, and operational recipes; [`server::ServeConfig`] documents
//! the `CGNN_SERVE_*` knobs.

#![warn(missing_docs)]

pub mod client;
pub mod control;
pub mod http;
pub mod pool;
pub mod server;
pub mod stats;

pub use client::{ClientResponse, HttpClient};
pub use control::{ControlPlane, ControlShared, ReloadOutcome};
pub use pool::{PredictJob, PredictReply, ReplicaPool};
pub use server::{ServeConfig, Server};
pub use stats::{ServeSnapshot, ServeStats};
