//! `cgnn-serve`: the surrogate-as-a-service binary.
//!
//! Reads its entire configuration from the registered `CGNN_SERVE_*`
//! environment knobs (see the README table or `docs/SERVING.md`), binds,
//! prints one line of startup summary, and serves until killed.

use cgnn_serve::{ServeConfig, Server};

fn main() {
    let config = ServeConfig::from_env();
    let server = match Server::start(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cgnn-serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "cgnn-serve listening on {} (model={} elems={} nodes={} replicas={} max_batch={} \
         batch_wait={}us queue_cap={} ckpt_dir={})",
        server.addr(),
        config.model_name,
        config.elems,
        server.n_local(),
        config.replicas,
        config.max_batch,
        config.batch_wait_us,
        config.queue_cap,
        config
            .ckpt_dir
            .as_ref()
            .map_or("<none>".to_string(), |d| d.display().to_string()),
    );
    server.join();
}
