//! Serving telemetry on the [`cgnn_comm::stats`] pattern: lock-free atomic
//! counters updated on the request path, folded into a plain-old-data
//! [`ServeSnapshot`] on demand (the `/metrics` endpoint).
//!
//! Everything here is allocation-free on the hot path: batch sizes and
//! latencies land in **fixed-width histograms** (a direct-indexed array for
//! batch sizes, power-of-two microsecond buckets for latency), so recording
//! a request is a handful of relaxed atomic increments. Percentiles are
//! computed from the histogram only when a snapshot is taken, and are
//! upper bounds (the top edge of the bucket holding the requested rank).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of direct-indexed batch-size buckets: sizes `1..=BATCH_BUCKETS`
/// count exactly, larger batches clamp into the last bucket.
pub const BATCH_BUCKETS: usize = 64;

/// Number of power-of-two latency buckets: bucket `i` counts requests
/// whose latency in microseconds lies in `[2^i, 2^(i+1))`; the top bucket
/// absorbs everything slower (`2^31` µs is over half an hour).
pub const LAT_BUCKETS: usize = 32;

/// Lock-free serving counters shared by the HTTP workers, the replica
/// pool, and the control plane. One instance per server.
#[derive(Debug)]
pub struct ServeStats {
    /// `/predict` requests answered `200` with a prediction.
    pub predict_ok: AtomicU64,
    /// `/predict` requests rejected `503` (queue full or draining).
    pub predict_rejected: AtomicU64,
    /// `/predict` requests failed `500` (replica pool gone mid-flight).
    pub predict_failed: AtomicU64,
    /// Requests answered `400` (malformed body or frame).
    pub bad_request: AtomicU64,
    /// Requests answered `404`/`405`.
    pub not_found: AtomicU64,
    /// `/health` hits.
    pub health: AtomicU64,
    /// `/info` hits.
    pub info: AtomicU64,
    /// `/metrics` hits.
    pub metrics: AtomicU64,
    /// `/admin/reload` hits.
    pub admin_reload: AtomicU64,
    /// Checkpoint reloads that actually swapped parameters in (admin- or
    /// watcher-triggered).
    pub reloads_applied: AtomicU64,
    /// Checkpoint reload attempts that failed (unreadable or mismatched
    /// checkpoint); the previous parameters keep serving.
    pub reload_errors: AtomicU64,
    /// `/admin/drain` hits.
    pub admin_drain: AtomicU64,
    /// Requests currently enqueued for the replica pool (gauge).
    pub queue_depth: AtomicU64,
    /// Forward passes executed by the replica pool.
    pub batches: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    lat_hist: [AtomicU64; LAT_BUCKETS],
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            predict_ok: AtomicU64::new(0),
            predict_rejected: AtomicU64::new(0),
            predict_failed: AtomicU64::new(0),
            bad_request: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            health: AtomicU64::new(0),
            info: AtomicU64::new(0),
            metrics: AtomicU64::new(0),
            admin_reload: AtomicU64::new(0),
            reloads_applied: AtomicU64::new(0),
            reload_errors: AtomicU64::new(0),
            admin_drain: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            lat_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServeStats {
    /// Record one executed micro-batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let bucket = size.clamp(1, BATCH_BUCKETS) - 1;
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one served `/predict` latency (enqueue to reply) in µs.
    pub fn record_latency_us(&self, us: u64) {
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(LAT_BUCKETS - 1);
        self.lat_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold the live counters into a plain-old-data snapshot.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            predict_ok: self.predict_ok.load(Ordering::Relaxed),
            predict_rejected: self.predict_rejected.load(Ordering::Relaxed),
            predict_failed: self.predict_failed.load(Ordering::Relaxed),
            bad_request: self.bad_request.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            health: self.health.load(Ordering::Relaxed),
            info: self.info.load(Ordering::Relaxed),
            metrics: self.metrics.load(Ordering::Relaxed),
            admin_reload: self.admin_reload.load(Ordering::Relaxed),
            reloads_applied: self.reloads_applied.load(Ordering::Relaxed),
            reload_errors: self.reload_errors.load(Ordering::Relaxed),
            admin_drain: self.admin_drain.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_hist: std::array::from_fn(|i| self.batch_hist[i].load(Ordering::Relaxed)),
            lat_hist: std::array::from_fn(|i| self.lat_hist[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-old-data fold of [`ServeStats`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// `/predict` requests answered `200`.
    pub predict_ok: u64,
    /// `/predict` requests rejected `503`.
    pub predict_rejected: u64,
    /// `/predict` requests failed `500`.
    pub predict_failed: u64,
    /// Requests answered `400`.
    pub bad_request: u64,
    /// Requests answered `404`/`405`.
    pub not_found: u64,
    /// `/health` hits.
    pub health: u64,
    /// `/info` hits.
    pub info: u64,
    /// `/metrics` hits.
    pub metrics: u64,
    /// `/admin/reload` hits.
    pub admin_reload: u64,
    /// Reloads that swapped parameters in.
    pub reloads_applied: u64,
    /// Reload attempts that failed.
    pub reload_errors: u64,
    /// `/admin/drain` hits.
    pub admin_drain: u64,
    /// Requests enqueued at snapshot time.
    pub queue_depth: u64,
    /// Forward passes executed.
    pub batches: u64,
    /// `batch_hist[i]` = batches of exactly `i + 1` requests (last bucket
    /// clamps larger batches).
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// `lat_hist[i]` = requests with latency in `[2^i, 2^(i+1))` µs.
    pub lat_hist: [u64; LAT_BUCKETS],
}

impl ServeSnapshot {
    /// Largest batch size observed (0 when no batch ran yet).
    pub fn max_batch(&self) -> usize {
        self.batch_hist
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
    }

    /// Mean executed batch size (0.0 when no batch ran yet).
    pub fn mean_batch(&self) -> f64 {
        let total: u64 = self
            .batch_hist
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        if self.batches == 0 {
            0.0
        } else {
            total as f64 / self.batches as f64
        }
    }

    /// Latency upper bound in µs at quantile `q` in `[0, 1]`: the top edge
    /// of the histogram bucket holding the requested rank (0 when no
    /// latency was recorded).
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let total: u64 = self.lat_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.lat_hist.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (i + 1)) - 1;
            }
        }
        (1u64 << LAT_BUCKETS) - 1
    }

    /// Render the snapshot as a self-describing JSON object (the
    /// `/metrics` response body). Histograms are emitted sparsely as
    /// `[bound, count]` pairs over non-empty buckets.
    pub fn to_json(&self) -> String {
        let batch_pairs: Vec<String> = self
            .batch_hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("[{}, {}]", i + 1, c))
            .collect();
        let lat_pairs: Vec<String> = self
            .lat_hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("[{}, {}]", (1u64 << (i + 1)) - 1, c))
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"requests\": {{\n",
                "    \"predict_ok\": {},\n",
                "    \"predict_rejected\": {},\n",
                "    \"predict_failed\": {},\n",
                "    \"bad_request\": {},\n",
                "    \"not_found\": {},\n",
                "    \"health\": {},\n",
                "    \"info\": {},\n",
                "    \"metrics\": {},\n",
                "    \"admin_reload\": {},\n",
                "    \"admin_drain\": {}\n",
                "  }},\n",
                "  \"reloads\": {{ \"applied\": {}, \"errors\": {} }},\n",
                "  \"queue_depth\": {},\n",
                "  \"batches\": {{ \"count\": {}, \"mean\": {:.3}, \"max\": {}, ",
                "\"hist\": [{}] }},\n",
                "  \"latency_us\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {}, ",
                "\"hist_le\": [{}] }}\n",
                "}}\n",
            ),
            self.predict_ok,
            self.predict_rejected,
            self.predict_failed,
            self.bad_request,
            self.not_found,
            self.health,
            self.info,
            self.metrics,
            self.admin_reload,
            self.admin_drain,
            self.reloads_applied,
            self.reload_errors,
            self.queue_depth,
            self.batches,
            self.mean_batch(),
            self.max_batch(),
            batch_pairs.join(", "),
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.90),
            self.latency_quantile_us(0.99),
            lat_pairs.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_bucket_and_quantile() {
        let s = ServeStats::default();
        for _ in 0..90 {
            s.record_latency_us(10); // bucket [8, 16)
        }
        for _ in 0..10 {
            s.record_latency_us(1000); // bucket [512, 1024)
        }
        s.record_batch(1);
        s.record_batch(4);
        s.record_batch(4);
        s.record_batch(10_000); // clamps into the last bucket
        let snap = s.snapshot();
        assert_eq!(snap.batches, 4);
        assert_eq!(snap.max_batch(), BATCH_BUCKETS);
        assert_eq!(snap.latency_quantile_us(0.50), 15);
        assert_eq!(snap.latency_quantile_us(0.90), 15);
        assert_eq!(snap.latency_quantile_us(0.99), 1023);
        let json = snap.to_json();
        assert!(json.contains("\"p50\": 15"));
        assert!(json.contains("\"predict_ok\": 0"));
    }

    #[test]
    fn empty_snapshot_is_well_formed() {
        let snap = ServeStats::default().snapshot();
        assert_eq!(snap.max_batch(), 0);
        assert_eq!(snap.mean_batch(), 0.0);
        assert_eq!(snap.latency_quantile_us(0.99), 0);
        assert!(snap.to_json().contains("\"queue_depth\": 0"));
    }
}
