//! Minimal blocking HTTP/1.1 client for the serving plane — shared by the
//! integration tests, the `serve_client` example, and the `servebench`
//! load generator.
//!
//! Intentionally tiny: keep-alive requests over one `TcpStream`, response
//! framing by `Content-Length` only. Because the workspace's `serde_json`
//! shim cannot *parse* JSON, machine-readable response fields are read
//! from headers (`X-Model-Step`, `X-N-Nodes`, ...) rather than bodies.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::http::read_line;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One keep-alive client connection.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connect to `addr`, retrying for up to `wait` (covers the race of a
    /// load generator starting before the server finished binding).
    pub fn connect_retry(addr: SocketAddr, wait: Duration) -> io::Result<HttpClient> {
        let deadline = Instant::now() + wait;
        loop {
            match HttpClient::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Issue one request and read the full response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.send_request(method, path, body)?;
        self.read_response()
    }

    /// Write one request without waiting for its response. Pairing `n`
    /// sends with `n` [`HttpClient::read_response`] calls pipelines the
    /// connection (responses come back in request order), which is how
    /// `servebench` measures saturation throughput without a client
    /// round-trip on every request's critical path.
    pub fn send_request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: cgnn-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()
    }

    /// Read the next response off the connection (see
    /// [`HttpClient::send_request`]).
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let status_line = read_line(&mut self.reader)?
            .ok_or_else(|| invalid("connection closed before status line"))?;
        // "HTTP/1.1 200 OK"
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid("malformed status line"))?;
        let mut headers = Vec::new();
        loop {
            let line = read_line(&mut self.reader)?
                .ok_or_else(|| invalid("connection closed in headers"))?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| invalid("malformed response header"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(&mut self.reader, &mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
