//! Hand-rolled HTTP/1.1 subset over `std::net` — exactly what the serving
//! plane needs and nothing more: request-line + headers + `Content-Length`
//! bodies, keep-alive by default, no chunked encoding, no TLS.
//!
//! The framing is deliberately strict (bounded line lengths, bounded header
//! count, bounded body size); anything outside the subset closes the
//! connection rather than guessing.

use std::io::{self, BufRead, Write};

/// Maximum accepted request-line or header-line length in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum accepted header count per request.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted request body in bytes (a 32-elems-per-axis order-2
/// mesh frame is ~6.6 MB; 64 MB leaves ample headroom).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (no query parsing).
    pub path: String,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of one read attempt on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was framed.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out with **no bytes consumed** — the connection is
    /// idle and still valid; the caller may poll shutdown flags and retry.
    Idle,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one CRLF- (or LF-) terminated line of at most [`MAX_LINE`] bytes;
/// `None` on a clean close before the first byte. Shared with the client
/// side of the protocol ([`crate::client`]).
pub fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(invalid("connection closed mid-line"))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map(Some)
                        .map_err(|_| invalid("non-UTF-8 header line"));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(invalid("header line too long"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A timeout after consuming part of a line leaves the stream
            // in an unknown framing state: report it as corruption, not
            // as an idle poll.
            Err(e) if is_timeout(&e) && !buf.is_empty() => {
                return Err(invalid("timed out mid-line"));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Frame one request off a keep-alive connection.
///
/// A timeout **before any byte of the next request** is reported as
/// [`ReadOutcome::Idle`] so servers can poll shutdown flags between
/// requests; a timeout mid-request is an error (the connection is in an
/// unknown framing state and must be closed).
pub fn read_request(r: &mut impl BufRead) -> io::Result<ReadOutcome> {
    let line = match read_line(r) {
        Ok(None) => return Ok(ReadOutcome::Closed),
        Ok(Some(l)) if l.is_empty() => return Err(invalid("empty request line")),
        Ok(Some(l)) => l,
        Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Idle),
        Err(e) => return Err(e),
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(invalid("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| invalid("connection closed in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(invalid("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let len: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v.parse().map_err(|_| invalid("malformed content-length"))?,
        None => 0,
    };
    if len > MAX_BODY {
        return Err(invalid("request body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// One response to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra response headers (name, value).
    pub extra: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A binary (`application/octet-stream`) response.
    pub fn octets(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type: "application/octet-stream",
            extra: Vec::new(),
            body,
        }
    }

    /// Attach an extra header (builder-style).
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra.push((name.to_string(), value));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto `w` (HTTP/1.1 framing with explicit
/// `Content-Length` and `Connection` headers). Does **not** flush: the
/// connection loop batches a pipelined burst of responses through one
/// buffered writer and flushes once per burst.
pub fn write_response(w: &mut impl Write, resp: &Response, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)
}

/// Encode a row-major `f64` matrix as the little-endian wire frame used by
/// `/predict` requests and responses.
pub fn encode_f64(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode the little-endian `f64` wire frame; `None` when the byte count
/// is not a multiple of 8.
pub fn decode_f64(bytes: &[u8]) -> Option<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_le_bytes(b)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_request_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\nX-Extra: v\r\n\r\nabcd";
        let mut r = BufReader::new(&raw[..]);
        match read_request(&mut r).expect("framing failed") {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/predict");
                assert_eq!(req.header("x-extra"), Some("v"));
                assert_eq!(req.body, b"abcd");
                assert!(!req.wants_close());
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_between_requests() {
        let raw = b"";
        let mut r = BufReader::new(&raw[..]);
        assert!(matches!(
            read_request(&mut r).expect("framing failed"),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn f64_frame_round_trips_bit_exactly() {
        let vals = [0.0, -0.0, 1.5e-300, f64::MAX, -7.25];
        let decoded = decode_f64(&encode_f64(&vals)).expect("multiple of 8");
        for (a, b) in vals.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f64(&[1, 2, 3]).is_none());
    }

    #[test]
    fn response_serialization_includes_extras() {
        let mut out = Vec::new();
        let resp = Response::json(503, "{}".to_string()).with_header("Retry-After", "1".into());
        write_response(&mut out, &resp, false).expect("write failed");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
