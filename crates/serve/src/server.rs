//! The assembled inference server: acceptor + HTTP worker pool in front of
//! the replica pool and control plane.
//!
//! ```text
//!             ┌──────────── control plane ────────────┐
//!             │ checkpoint watcher → validate → swap  │
//!             └───────────────┬───────────────────────┘
//!   TCP accept → workers ─ bounded queue ─ replicas (micro-batch forward)
//!             └── /health /info /metrics /admin/* ──→ telemetry
//! ```
//!
//! Connections are served with HTTP/1.1 **pipelining**: a worker admits
//! requests as fast as the peer streams them (enqueueing `/predict` work
//! immediately) and writes responses strictly in request order as replica
//! replies settle. One streaming connection can therefore keep whole
//! micro-batches in flight — the bulk-query shape of a solver process
//! driving the surrogate.
//!
//! See `docs/SERVING.md` for the endpoint reference and batching
//! semantics.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cgnn_core::config as knobs;
use cgnn_core::GnnConfig;
use cgnn_graph::{build_global_graph, LocalGraph, NODE_FEATS};
use cgnn_mesh::BoxMesh;

use crate::control::{ControlPlane, ControlShared};
use crate::http::{self, ReadOutcome, Request, Response};
use crate::pool::{PredictJob, PredictReply, ReplicaPool};
use crate::stats::ServeStats;

/// Complete serving configuration. [`ServeConfig::from_env`] reads every
/// field from the registered `CGNN_SERVE_*` knobs; tests and benches
/// override fields directly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Warm replica count.
    pub replicas: usize,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Micro-batch deadline in microseconds.
    pub batch_wait_us: u64,
    /// Bounded request-queue capacity.
    pub queue_cap: usize,
    /// Checkpoint poll period in milliseconds.
    pub poll_ms: u64,
    /// Watched checkpoint directory (`None` serves seeded weights).
    pub ckpt_dir: Option<PathBuf>,
    /// Served architecture.
    pub model: GnnConfig,
    /// Preset name for `/info` (`small` / `large`).
    pub model_name: String,
    /// Elements per axis of the served mesh (GLL order fixed at 2).
    pub elems: usize,
    /// Seed for the fallback weights (and the restore probe).
    pub seed: u64,
    /// HTTP worker threads (concurrent connections served).
    pub http_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            replicas: 1,
            max_batch: 32,
            batch_wait_us: 2000,
            queue_cap: 256,
            poll_ms: 500,
            ckpt_dir: None,
            model: GnnConfig::small(),
            model_name: "small".to_string(),
            elems: 4,
            seed: 42,
            http_workers: 8,
        }
    }
}

impl ServeConfig {
    /// Read the configuration from the registered `CGNN_SERVE_*` knobs,
    /// with the documented defaults for unset variables.
    pub fn from_env() -> Self {
        let defaults = ServeConfig::default();
        let model_name = knobs::CGNN_SERVE_MODEL.string_or("small");
        let model = if model_name == "large" {
            GnnConfig::large()
        } else {
            GnnConfig::small()
        };
        ServeConfig {
            addr: knobs::CGNN_SERVE_ADDR.string_or(&defaults.addr),
            replicas: knobs::CGNN_SERVE_REPLICAS.usize_or(defaults.replicas),
            max_batch: knobs::CGNN_SERVE_MAX_BATCH.usize_or(defaults.max_batch),
            batch_wait_us: knobs::CGNN_SERVE_BATCH_WAIT_US.usize_or(2000) as u64,
            queue_cap: knobs::CGNN_SERVE_QUEUE_CAP.usize_or(defaults.queue_cap),
            poll_ms: knobs::CGNN_SERVE_POLL_MS.usize_or(500) as u64,
            ckpt_dir: knobs::CGNN_SERVE_CKPT_DIR.lookup().map(PathBuf::from),
            model,
            model_name,
            elems: knobs::CGNN_SERVE_ELEMS.usize_or(defaults.elems),
            seed: defaults.seed,
            http_workers: defaults.http_workers,
        }
    }
}

/// The running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] for a graceful stop or [`Server::join`] to serve
/// until the process dies.
pub struct Server {
    addr: SocketAddr,
    graph: Arc<LocalGraph>,
    shared: Arc<ControlShared>,
    control: Arc<ControlPlane>,
    stats: Arc<ServeStats>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    watcher: Option<std::thread::JoinHandle<()>>,
    pool: Option<ReplicaPool>,
    config: ServeConfig,
}

/// Everything one HTTP worker needs to route requests.
struct Router {
    graph: Arc<LocalGraph>,
    shared: Arc<ControlShared>,
    control: Arc<ControlPlane>,
    stats: Arc<ServeStats>,
    pool_tx: mpsc::SyncSender<PredictJob>,
    config: ServeConfig,
}

impl Server {
    /// Build the served graph, load/validate initial parameters, and
    /// start every thread. Returns once the listener is bound (the
    /// actual address is [`Server::addr`]).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let mesh = BoxMesh::new(
            (config.elems, config.elems, config.elems),
            2,
            (1.0, 1.0, 1.0),
            false,
        );
        let graph = Arc::new(build_global_graph(&mesh));
        let stats = Arc::new(ServeStats::default());
        let control = Arc::new(ControlPlane::new(
            config.model,
            config.seed,
            config.ckpt_dir.clone(),
        )?);
        let shared = control.shared();
        let pool = ReplicaPool::spawn(
            Arc::clone(&graph),
            config.model,
            Arc::clone(&shared),
            Arc::clone(&stats),
            config.replicas,
            config.max_batch,
            Duration::from_micros(config.batch_wait_us),
            config.queue_cap,
        );
        let watcher = config.ckpt_dir.is_some().then(|| {
            control.spawn_watcher(Duration::from_millis(config.poll_ms), Arc::clone(&stats))
        });

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers = (0..config.http_workers.max(1))
            .map(|i| {
                let router = Router {
                    graph: Arc::clone(&graph),
                    shared: Arc::clone(&shared),
                    control: Arc::clone(&control),
                    stats: Arc::clone(&stats),
                    pool_tx: pool.sender(),
                    config: config.clone(),
                };
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::Builder::new()
                    .name(format!("cgnn-serve-http{i}"))
                    .spawn(move || worker_loop(router, conn_rx))
                    .expect("failed to spawn an HTTP worker thread")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cgnn-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        match stream {
                            // A send error means the workers are gone,
                            // which only happens during shutdown.
                            Ok(s) => {
                                if conn_tx.send(s).is_err() {
                                    break;
                                }
                            }
                            Err(_) => continue,
                        }
                    }
                })
                .expect("failed to spawn the acceptor thread")
        };

        Ok(Server {
            addr,
            graph,
            shared,
            control,
            stats,
            acceptor: Some(acceptor),
            workers,
            watcher,
            pool: Some(pool),
            config,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Local rows (= nodes) of the served graph: `/predict` frames carry
    /// `n_local() * NODE_FEATS` little-endian `f64` values.
    pub fn n_local(&self) -> usize {
        self.graph.n_local()
    }

    /// The configuration this server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Live serving telemetry.
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// Shared serving state (drain/shutdown flags, model generation).
    pub fn shared(&self) -> Arc<ControlShared> {
        Arc::clone(&self.shared)
    }

    /// Trigger one synchronous control-plane reload scan (what
    /// `POST /admin/reload` does).
    pub fn reload(&self) -> std::io::Result<crate::control::ReloadOutcome> {
        self.control.reload()
    }

    /// Block the calling thread until the acceptor exits (i.e. forever,
    /// for a server that is never shut down).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("the acceptor thread panicked");
        }
    }

    /// Graceful shutdown: stop accepting, refuse new `/predict` work,
    /// serve everything already queued, then join every thread.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the acceptor with a no-op connection.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("the acceptor thread panicked");
        }
        // Drain and stop the replicas first: any worker blocked on a
        // reply either receives it (queued request) or observes the
        // reply channel disconnect (request dropped with the queue).
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("an HTTP worker thread panicked");
        }
        if let Some(watcher) = self.watcher.take() {
            watcher.join().expect("the checkpoint watcher panicked");
        }
    }
}

/// Per-connection read timeout: bounds how long a worker is blind to the
/// shutdown flag while parked on an idle keep-alive connection.
const READ_TICK: Duration = Duration::from_millis(200);

fn worker_loop(router: Router, conn_rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        if router.shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = {
            let rx = conn_rx.lock().expect("serve accept mutex poisoned");
            match rx.recv_timeout(READ_TICK) {
                Ok(s) => s,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        // Per-connection setup failures just drop the connection.
        let _ = handle_connection(&router, stream);
    }
}

/// Cap on buffered pipelined requests per connection: bounds the reply
/// backlog a single connection can hold open while still letting one
/// streaming client fill the largest micro-batch many times over.
const MAX_PIPELINE: usize = 256;

/// One response owed to the connection, in request order.
enum Pending {
    /// Computed inline (every endpoint except an accepted `/predict`).
    Ready(Response),
    /// An accepted `/predict`: the reply is in flight from a replica.
    /// The `Instant` is the enqueue time, for the latency histogram.
    InFlight(mpsc::Receiver<PredictReply>, Instant),
}

/// Serve one connection with HTTP/1.1 pipelining: requests are admitted
/// (and `/predict` work enqueued) as fast as the peer sends them, and
/// responses are written strictly in request order as they settle. A
/// single streaming connection can therefore keep whole micro-batches in
/// flight — the bulk-query shape a solver process produces — instead of
/// one request per round-trip.
fn handle_connection(router: &Router, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut pending: VecDeque<(Pending, bool)> = VecDeque::new();
    let mut closing = false;
    loop {
        // A settled burst of responses leaves the buffered writer here,
        // before admission can park waiting on the peer (which may itself
        // be waiting on these responses).
        writer.flush()?;
        // Admission: with no reply owed, park in a blocking read (bounded
        // by READ_TICK so shutdown is observed); with replies owed, only
        // consume input that is already buffered — a pipelining client's
        // next request — and never wait on a slow sender.
        while !closing && pending.len() < MAX_PIPELINE {
            if !pending.is_empty() && !input_available(&mut reader)? {
                break;
            }
            match http::read_request(&mut reader) {
                Ok(ReadOutcome::Request(req)) => {
                    let keep = !req.wants_close();
                    pending.push_back((route(router, &req), keep));
                    if !keep {
                        closing = true;
                    }
                }
                Ok(ReadOutcome::Closed) => closing = true,
                Ok(ReadOutcome::Idle) => {
                    if router.shared.shutdown.load(Ordering::Acquire) {
                        closing = true;
                    }
                    break;
                }
                Err(e) => {
                    let resp = Response::json(400, format!("{{ \"error\": \"{e}\" }}\n"));
                    pending.push_back((Pending::Ready(resp), false));
                    closing = true;
                }
            }
        }
        if pending.is_empty() {
            if closing {
                return writer.flush();
            }
            continue;
        }
        // Settlement: block for the front reply, then flush every further
        // response that is already settled — a replica finishing a batch
        // retires this connection's share of it in one wake-up.
        let mut block_for_front = true;
        while let Some((front, keep)) = pending.pop_front() {
            let settled = if block_for_front {
                Ok(settle(router, front))
            } else {
                try_settle(router, front)
            };
            block_for_front = false;
            match settled {
                Ok(resp) => {
                    http::write_response(&mut writer, &resp, keep)?;
                    if !keep {
                        return writer.flush();
                    }
                }
                Err(not_ready) => {
                    pending.push_front((not_ready, keep));
                    break;
                }
            }
        }
    }
}

/// Whether another pipelined request (or EOF) can be consumed without
/// waiting on the peer: bytes already sit in the read buffer, or the
/// socket has data right now.
fn input_available(reader: &mut BufReader<TcpStream>) -> std::io::Result<bool> {
    if !reader.buffer().is_empty() {
        return Ok(true);
    }
    let stream = reader.get_ref();
    stream.set_nonblocking(true)?;
    let mut probe = [0u8; 1];
    let peeked = stream.peek(&mut probe);
    stream.set_nonblocking(false)?;
    match peeked {
        // Data — or EOF, which the next read_request reports as Closed.
        Ok(_) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(false),
        Err(e) => Err(e),
    }
}

/// Resolve a pending response, blocking on an in-flight replica reply.
fn settle(router: &Router, p: Pending) -> Response {
    match p {
        Pending::Ready(resp) => resp,
        Pending::InFlight(rx, enqueued) => match rx.recv() {
            Ok(reply) => finish_predict(router, reply, enqueued),
            Err(_) => pool_gone(router),
        },
    }
}

/// Resolve a pending response only if it is already settled; hands the
/// pending entry back otherwise.
fn try_settle(router: &Router, p: Pending) -> Result<Response, Pending> {
    match p {
        Pending::Ready(resp) => Ok(resp),
        Pending::InFlight(rx, enqueued) => match rx.try_recv() {
            Ok(reply) => Ok(finish_predict(router, reply, enqueued)),
            Err(mpsc::TryRecvError::Empty) => Err(Pending::InFlight(rx, enqueued)),
            Err(mpsc::TryRecvError::Disconnected) => Ok(pool_gone(router)),
        },
    }
}

fn finish_predict(router: &Router, reply: PredictReply, enqueued: Instant) -> Response {
    let stats = &router.stats;
    match reply.result {
        Ok(y) => {
            stats.predict_ok.fetch_add(1, Ordering::Relaxed);
            stats.record_latency_us(enqueued.elapsed().as_micros() as u64);
            Response::octets(200, http::encode_f64(&y))
                .with_header("X-Model-Step", reply.model_step.to_string())
        }
        Err(msg) => {
            stats.bad_request.fetch_add(1, Ordering::Relaxed);
            Response::json(400, format!("{{ \"error\": \"{msg}\" }}\n"))
        }
    }
}

/// The replica pool disappeared mid-flight (hard shutdown).
fn pool_gone(router: &Router) -> Response {
    router.stats.predict_failed.fetch_add(1, Ordering::Relaxed);
    Response::json(500, "{ \"error\": \"replica pool gone\" }\n".to_string())
}

fn route(router: &Router, req: &Request) -> Pending {
    let stats = &router.stats;
    let resp = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            stats.health.fetch_add(1, Ordering::Relaxed);
            let draining = router.shared.draining.load(Ordering::Acquire);
            Response::json(
                200,
                format!("{{ \"ok\": true, \"draining\": {draining} }}\n"),
            )
        }
        ("GET", "/info") => {
            stats.info.fetch_add(1, Ordering::Relaxed);
            info_response(router)
        }
        ("GET", "/metrics") => {
            stats.metrics.fetch_add(1, Ordering::Relaxed);
            Response::json(200, stats.snapshot().to_json())
        }
        ("POST", "/predict") => return predict(router, req),
        ("POST", "/admin/reload") => {
            stats.admin_reload.fetch_add(1, Ordering::Relaxed);
            match router.control.reload() {
                Ok(out) => {
                    if out.reloaded {
                        stats.reloads_applied.fetch_add(1, Ordering::Relaxed);
                    }
                    Response::json(
                        200,
                        format!(
                            "{{ \"reloaded\": {}, \"step\": {} }}\n",
                            out.reloaded, out.step
                        ),
                    )
                }
                Err(e) => {
                    stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                    Response::json(500, format!("{{ \"error\": \"{e}\" }}\n"))
                }
            }
        }
        ("POST", "/admin/drain") => {
            stats.admin_drain.fetch_add(1, Ordering::Relaxed);
            router.shared.draining.store(true, Ordering::Release);
            Response::json(200, "{ \"draining\": true }\n".to_string())
        }
        (_, "/health" | "/info" | "/metrics" | "/predict" | "/admin/reload" | "/admin/drain") => {
            stats.not_found.fetch_add(1, Ordering::Relaxed);
            Response::json(405, "{ \"error\": \"method not allowed\" }\n".to_string())
        }
        _ => {
            stats.not_found.fetch_add(1, Ordering::Relaxed);
            Response::json(404, "{ \"error\": \"no such endpoint\" }\n".to_string())
        }
    };
    Pending::Ready(resp)
}

fn info_response(router: &Router) -> Response {
    let g = &router.graph;
    let body = format!(
        concat!(
            "{{\n",
            "  \"model\": \"{}\",\n",
            "  \"model_step\": {},\n",
            "  \"elems\": {},\n",
            "  \"n_nodes\": {},\n",
            "  \"n_edges\": {},\n",
            "  \"node_feats\": {},\n",
            "  \"node_out\": {},\n",
            "  \"max_batch\": {},\n",
            "  \"replicas\": {}\n",
            "}}\n",
        ),
        router.config.model_name,
        router.shared.model_step.load(Ordering::Acquire),
        router.config.elems,
        g.n_local(),
        g.n_edges(),
        NODE_FEATS,
        router.config.model.node_out,
        router.config.max_batch,
        router.config.replicas,
    );
    // Machine-readable copies in headers: the workspace's serde_json shim
    // cannot parse, so clients frame on these instead of the JSON body.
    Response::json(200, body)
        .with_header("X-N-Nodes", router.graph.n_local().to_string())
        .with_header("X-Node-Feats", NODE_FEATS.to_string())
        .with_header(
            "X-Model-Step",
            router.shared.model_step.load(Ordering::Acquire).to_string(),
        )
}

/// Validate and enqueue a `/predict` request. Acceptance is decided here
/// (backpressure, draining, frame validation); the forward pass settles
/// later, in request order, via the connection's pending queue.
fn predict(router: &Router, req: &Request) -> Pending {
    let stats = &router.stats;
    if router.shared.draining.load(Ordering::Acquire) {
        stats.predict_rejected.fetch_add(1, Ordering::Relaxed);
        return Pending::Ready(
            Response::json(503, "{ \"error\": \"draining\" }\n".to_string())
                .with_header("Retry-After", "1".to_string()),
        );
    }
    let expect = router.graph.n_local() * NODE_FEATS;
    let x = match http::decode_f64(&req.body) {
        Some(x) if x.len() == expect => x,
        _ => {
            stats.bad_request.fetch_add(1, Ordering::Relaxed);
            return Pending::Ready(Response::json(
                400,
                format!(
                    "{{ \"error\": \"body must be {expect} little-endian f64 values ({} bytes)\" }}\n",
                    expect * 8
                ),
            ));
        }
    };
    let started = Instant::now();
    let (resp_tx, resp_rx) = mpsc::channel();
    let job = PredictJob { x, resp: resp_tx };
    stats.queue_depth.fetch_add(1, Ordering::Relaxed);
    match router.pool_tx.try_send(job) {
        Ok(()) => Pending::InFlight(resp_rx, started),
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
            stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            stats.predict_rejected.fetch_add(1, Ordering::Relaxed);
            Pending::Ready(
                Response::json(503, "{ \"error\": \"queue full\" }\n".to_string())
                    .with_header("Retry-After", "1".to_string()),
            )
        }
    }
}
