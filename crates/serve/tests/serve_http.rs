//! End-to-end tests of the serving plane over real TCP: bit-identity of
//! served predictions, hot checkpoint reload under concurrent load, and
//! queue-overflow backpressure.

use std::sync::Arc;
use std::time::{Duration, Instant};

// Workspace-shared bounded-polling helpers (no fixed sleeps in tests).
#[path = "../../../tests/common/mod.rs"]
mod common;

use cgnn_comm::LoopbackBackend;
use cgnn_core::{GnnConfig, HaloContext, RankData, Trainer};
use cgnn_graph::build_global_graph;
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_serve::http::{decode_f64, encode_f64};
use cgnn_serve::{HttpClient, ServeConfig, Server};
use cgnn_session::CheckpointPolicy;

const ELEMS: usize = 2;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        elems: ELEMS,
        ..ServeConfig::default()
    }
}

/// A reference trainer with the same graph/architecture/seed the server
/// uses, for computing expected predictions in-process.
fn reference_trainer(seed: u64) -> (Trainer, Arc<cgnn_graph::LocalGraph>) {
    let mesh = BoxMesh::new((ELEMS, ELEMS, ELEMS), 2, (1.0, 1.0, 1.0), false);
    let graph = Arc::new(build_global_graph(&mesh));
    let ctx = HaloContext::single(LoopbackBackend::comm());
    (Trainer::new(GnnConfig::small(), seed, 1e-3, ctx), graph)
}

fn sample_inputs(graph: &Arc<cgnn_graph::LocalGraph>, count: usize) -> Vec<RankData> {
    let field = TaylorGreen::new(0.01);
    (0..count)
        .map(|i| RankData::tgv_autoencode(Arc::clone(graph), &field, i as f64 * 0.1))
        .collect()
}

#[test]
fn served_predictions_are_bit_identical_to_in_process_inference() {
    let config = ServeConfig {
        max_batch: 8,
        // Generous assembly window so the concurrent burst below lands in
        // one stacked forward pass.
        batch_wait_us: 200_000,
        ..test_config()
    };
    let seed = config.seed;
    let server = Server::start(config).expect("server start");
    let addr = server.addr();
    let (trainer, graph) = reference_trainer(seed);
    let samples = sample_inputs(&graph, 6);

    let responses: Vec<(u16, Option<u64>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = samples
            .iter()
            .map(|sample| {
                scope.spawn(move || {
                    let mut client =
                        HttpClient::connect_retry(addr, Duration::from_secs(5)).expect("connect");
                    let body = encode_f64(sample.x.data());
                    let resp = client.request("POST", "/predict", &body).expect("predict");
                    let step = resp
                        .header("x-model-step")
                        .and_then(|v| v.parse::<u64>().ok());
                    let y = decode_f64(&resp.body).expect("f64 frame");
                    (resp.status, step, y)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (sample, (status, step, served)) in samples.iter().zip(&responses) {
        assert_eq!(*status, 200);
        assert_eq!(*step, Some(0), "seeded weights serve as step 0");
        let expected = trainer.predict(sample);
        assert_eq!(served.len(), expected.data().len());
        for (a, b) in served.iter().zip(expected.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "served prediction diverged");
        }
    }

    // The burst was served by stacked forward passes: fewer passes than
    // requests, i.e. micro-batching actually engaged.
    let snap = server.stats().snapshot();
    assert_eq!(snap.predict_ok, 6);
    assert!(
        snap.max_batch() >= 2,
        "expected at least one stacked batch, got max {}",
        snap.max_batch()
    );

    // Telemetry sanity over the wire.
    let mut client = HttpClient::connect(addr).expect("connect");
    let metrics = client.request("GET", "/metrics", &[]).expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).expect("utf8 metrics");
    assert!(text.contains("\"predict_ok\": 6"), "metrics: {text}");
    assert!(text.contains("\"latency_us\""));

    let info = client.request("GET", "/info", &[]).expect("info");
    assert_eq!(
        info.header("x-n-nodes"),
        Some(graph.n_local().to_string().as_ref())
    );
    server.shutdown();
}

#[test]
fn hot_reload_swaps_parameters_without_dropping_requests() {
    let dir = std::env::temp_dir().join(format!("cgnn_serve_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let policy = CheckpointPolicy::every(1, &dir);

    // Train a reference model and save two distinct checkpoints.
    let (mut trainer, graph) = reference_trainer(7);
    let samples = sample_inputs(&graph, 1);
    for _ in 0..3 {
        trainer.step(&samples[0]);
    }
    cgnn_tensor::save_checkpoint(
        &trainer.params,
        &trainer.opt.state(),
        policy.path_for_step(1),
    )
    .expect("save step 1");
    let expected_v1 = trainer.predict(&samples[0]);
    for _ in 0..3 {
        trainer.step(&samples[0]);
    }
    let expected_v2 = trainer.predict(&samples[0]);
    assert_ne!(
        expected_v1.data(),
        expected_v2.data(),
        "training must change the prediction for the reload to be observable"
    );

    let config = ServeConfig {
        ckpt_dir: Some(dir.clone()),
        // Poll slowly: the test exercises the synchronous /admin/reload.
        poll_ms: 60_000,
        ..test_config()
    };
    let server = Server::start(config).expect("server start");
    let addr = server.addr();
    let body = encode_f64(samples[0].x.data());

    // Startup already loaded step 1.
    let mut client = HttpClient::connect_retry(addr, Duration::from_secs(5)).expect("connect");
    let resp = client.request("POST", "/predict", &body).expect("predict");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-model-step"), Some("1"));
    let served = decode_f64(&resp.body).expect("frame");
    assert_eq!(served, expected_v1.data(), "step-1 weights must serve");

    // Hammer /predict from background threads while the checkpoint
    // changes under the server.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammered = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let in_flight: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let hammered = Arc::clone(&hammered);
            let body = body.clone();
            let e1 = expected_v1.data().to_vec();
            let e2 = expected_v2.data().to_vec();
            std::thread::spawn(move || {
                let mut client =
                    HttpClient::connect_retry(addr, Duration::from_secs(5)).expect("connect");
                let mut served = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let resp = client.request("POST", "/predict", &body).expect("predict");
                    assert_eq!(resp.status, 200, "no request may drop during reload");
                    let y = decode_f64(&resp.body).expect("frame");
                    // Every response is exactly one parameter set, never
                    // a torn mixture, and the step header names which.
                    match resp.header("x-model-step") {
                        Some("1") => assert_eq!(y, e1, "step-1 response torn"),
                        Some("2") => assert_eq!(y, e2, "step-2 response torn"),
                        other => panic!("unexpected model step {other:?}"),
                    }
                    served += 1;
                    hammered.fetch_add(1, std::sync::atomic::Ordering::Release);
                }
                served
            })
        })
        .collect();

    // The new checkpoint lands only once load is provably in flight (the
    // background threads have served step-1 responses), not after a fixed
    // sleep that may or may not cover their startup.
    common::wait_until(common::generous(), "load threads to start serving", || {
        hammered.load(std::sync::atomic::Ordering::Acquire) >= 3
    });
    cgnn_tensor::save_checkpoint(
        &trainer.params,
        &trainer.opt.state(),
        policy.path_for_step(2),
    )
    .expect("save step 2");
    let reload = client
        .request("POST", "/admin/reload", &[])
        .expect("reload");
    assert_eq!(reload.status, 200);
    let reload_body = String::from_utf8(reload.body).expect("utf8");
    assert!(
        reload_body.contains("\"reloaded\": true") && reload_body.contains("\"step\": 2"),
        "reload response: {reload_body}"
    );

    // New requests converge to the new parameters.
    let y = common::wait_for(
        common::generous(),
        "replicas to install the reloaded parameters",
        || {
            let resp = client.request("POST", "/predict", &body).expect("predict");
            assert_eq!(resp.status, 200);
            (resp.header("x-model-step") == Some("2"))
                .then(|| decode_f64(&resp.body).expect("frame"))
        },
    );
    assert_eq!(y, expected_v2.data(), "step-2 weights must serve");
    stop.store(true, std::sync::atomic::Ordering::Release);
    let background_served: usize = in_flight
        .into_iter()
        .map(|h| h.join().expect("load thread"))
        .sum();
    assert!(background_served > 0, "load threads never got through");

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn saturated_queue_rejects_with_503_instead_of_hanging() {
    let config = ServeConfig {
        // No replicas: nothing drains the queue, so saturation is
        // deterministic — one slot fills and stays full.
        replicas: 0,
        queue_cap: 1,
        http_workers: 4,
        ..test_config()
    };
    let server = Server::start(config).expect("server start");
    let addr = server.addr();
    let n_vals = server.n_local() * cgnn_graph::NODE_FEATS;
    let body = encode_f64(&vec![0.25; n_vals]);

    // First request occupies the single queue slot and hangs (no replica
    // will ever serve it).
    let hung = {
        let body = body.clone();
        std::thread::spawn(move || {
            let mut client =
                HttpClient::connect_retry(addr, Duration::from_secs(5)).expect("connect");
            client.request("POST", "/predict", &body)
        })
    };
    common::wait_until(common::generous(), "first request to enqueue", || {
        server.stats().snapshot().queue_depth > 0
    });

    // Second request must be rejected immediately, not block.
    let mut client = HttpClient::connect_retry(addr, Duration::from_secs(5)).expect("connect");
    let t0 = Instant::now();
    let resp = client.request("POST", "/predict", &body).expect("request");
    assert_eq!(resp.status, 503, "saturated queue must reject");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "rejection must be immediate, took {:?}",
        t0.elapsed()
    );
    assert!(resp.header("retry-after").is_some());
    assert!(server.stats().snapshot().predict_rejected >= 1);

    // Drain mode rejects even with queue room.
    let drain = client.request("POST", "/admin/drain", &[]).expect("drain");
    assert_eq!(drain.status, 200);
    let resp = client.request("POST", "/predict", &body).expect("request");
    assert_eq!(resp.status, 503, "draining server must refuse new work");

    // Shutdown resolves the hung request (500: its job died with the
    // queue) instead of deadlocking.
    server.shutdown();
    // The connection may also just close under shutdown (Err), which is
    // an acceptable resolution too.
    if let Ok(resp) = hung.join().expect("hung client thread") {
        assert_eq!(resp.status, 500);
    }
}
