//! Shared helpers for the benchmark harness: every table and figure of the
//! paper's evaluation section has a regeneration binary in `src/bin/`, and
//! the kernel-level Criterion benches live in `benches/`.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table I (model settings)            | `table1` |
//! | Table II (sub-graph statistics)     | `table2` |
//! | Fig. 6 left (loss vs R)             | `fig6_left` |
//! | Fig. 6 right (training curves)      | `fig6_right` |
//! | Fig. 7 (weak scaling)               | `fig7` |
//! | Fig. 8 (relative throughput)        | `fig8` |

use cgnn_core::config::EnvKnob;
use cgnn_mesh::TaylorGreen;
use cgnn_session::Session;

/// Evaluate the consistent loss of a seeded, randomly initialized GNN with
/// the input as target (the paper's Fig. 6 demonstration protocol), for
/// the session's configuration. Sessions carrying a snapshot dataset are
/// scored as the mean over the whole stream; plain sessions fall back to
/// the single `t = 0` Taylor-Green snapshot. Identical on every rank.
pub fn demo_loss(session: &Session) -> f64 {
    if session.dataset().is_some() {
        session.eval_dataset()
    } else {
        session.initial_loss(&TaylorGreen::new(0.01), 0.0)
    }
}

/// Parse a registered env knob override with a binary-specific default
/// (used by the figure binaries to switch between quick and paper-scale
/// runs). Taking an [`EnvKnob`] rather than a bare name means every
/// override a binary honors is declared in the central registry
/// (`cgnn_core::config`) and therefore documented in the README table.
pub fn env_usize(knob: &EnvKnob, default: usize) -> usize {
    knob.usize_or(default)
}

/// Write a serializable result as pretty JSON under `results/`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, json).expect("write results file");
    println!("\n[wrote {}]", path.display());
}

/// serde bridge: serde is re-exported through serde_json's dependency; the
/// bound above needs the real crate.
pub use serde;
pub use serde_json;

/// Pre-PR single-rank training-step throughput at the `hotpath` bench's
/// default size (6^3 elements, p = 2, small model), measured on the
/// tracking machine as the best of five 10-step runs at commit `2c6dbcf`
/// (before the parallel-kernel / tape-workspace / overlap work). Recorded
/// into `BENCH_hotpath.json` so the speedup the hot-path overhaul claims
/// stays auditable against a fixed reference.
pub const BASELINE_STEPS_PER_SEC: f64 = 9.56;
