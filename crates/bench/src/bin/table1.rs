//! Regenerate paper Table I: small and large GNN model settings, with
//! trainable parameter counts from the *actual* model builder.

use cgnn_core::{ConsistentGnn, GnnConfig};

fn main() {
    println!("Table I: small and large GNN model settings");
    println!("{:<38} {:>10} {:>10}", "", "Small", "Large");
    let small = GnnConfig::small();
    let large = GnnConfig::large();
    println!(
        "{:<38} {:>10} {:>10}",
        "Hidden channel dim. (NH)", small.hidden, large.hidden
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "Neural message passing layers (M)", small.n_mp_layers, large.n_mp_layers
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "MLP hidden layers", small.mlp_hidden, large.mlp_hidden
    );
    let (_, m_small) = ConsistentGnn::seeded(small, 0);
    let (_, m_large) = ConsistentGnn::seeded(large, 0);
    println!(
        "{:<38} {:>10} {:>10}",
        "Trainable parameters (ours)",
        m_small.num_scalars(),
        m_large.num_scalars()
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "Trainable parameters (paper)", 3_979, 91_459
    );
    println!(
        "{:<38} {:>9.2}% {:>9.2}%",
        "Deviation",
        100.0 * (m_small.num_scalars() as f64 - 3_979.0) / 3_979.0,
        100.0 * (m_large.num_scalars() as f64 - 91_459.0) / 91_459.0
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "Halo exchange modes", "None, A2A,", "None, A2A,"
    );
    println!("{:<38} {:>10} {:>10}", "", "N-A2A", "N-A2A");
    println!(
        "{:<38} {:>10} {:>10}",
        "Nodes-per-subgraph/GPU", "256k, 512k", "256k, 512k"
    );
    println!(
        "\nNote: the paper does not fully specify MLP internals (bias/LayerNorm\n\
         placement); our closest-match interpretation lands within 0.7%."
    );
}
