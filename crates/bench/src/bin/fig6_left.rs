//! Regenerate paper Fig. 6 (left): consistent-loss evaluations of a
//! randomly initialized GNN versus the number of ranks R, for standard NMP
//! layers (no halo exchange) and consistent NMP layers. One `Session` per
//! (R, mode) configuration.
//!
//! `CGNN_ELEMS` sets the cubic element count per axis (paper: 32, default
//! here 12 to stay fast on laptops); `CGNN_MAXR` caps the rank sweep.

use cgnn_bench::{demo_loss, env_usize, write_json};
use cgnn_core::config;
use cgnn_core::HaloExchangeMode;
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_partition::Strategy;
use cgnn_session::{Dataset, Session};
use serde_json::json;

const SEED: u64 = 2024;

fn main() {
    let elems = env_usize(&config::CGNN_ELEMS, 12);
    let max_r = env_usize(&config::CGNN_MAXR, 64);
    let mesh = BoxMesh::new((elems, elems, elems), 1, (1.0, 1.0, 1.0), false);
    println!(
        "Fig. 6 (left): mean dataset loss vs number of ranks; {}^3 elements p=1, {} nodes",
        elems,
        mesh.num_global_nodes()
    );
    // One wiring (partition + graphs) per rank count; the mode sweep swaps
    // only the exchange strategy via `with_exchange`. The score is the
    // mean consistent loss over a three-snapshot Taylor-Green stream.
    let field = TaylorGreen::new(0.01);
    let times = [0.0, 0.2, 0.4];
    let session = |r: usize| {
        Session::builder()
            .mesh(mesh.clone())
            .partition(Strategy::Block)
            .ranks(r)
            .dataset(Dataset::tgv_autoencode(&mesh, &field, &times))
            .seed(SEED)
            .build()
            .expect("session")
    };

    let reference = demo_loss(&session(1).with_exchange(HaloExchangeMode::None));
    println!("R=1 reference loss: {reference:.12e}\n");
    println!(
        "{:>5} {:>18} {:>18} {:>12} {:>12}",
        "R", "standard NMP", "consistent NMP", "std relerr", "cons relerr"
    );

    let mut rows = vec![json!({"ranks": 1, "standard": reference, "consistent": reference})];
    let mut r = 2;
    while r <= max_r && mesh.num_elements() >= r {
        let wired = session(r);
        let losses: Vec<f64> = [HaloExchangeMode::None, HaloExchangeMode::NeighborAllToAll]
            .into_iter()
            .map(|mode| demo_loss(&wired.with_exchange(mode)))
            .collect();
        println!(
            "{:>5} {:>18.10e} {:>18.10e} {:>12.3e} {:>12.3e}",
            r,
            losses[0],
            losses[1],
            (losses[0] - reference).abs() / reference,
            (losses[1] - reference).abs() / reference
        );
        rows.push(json!({"ranks": r, "standard": losses[0], "consistent": losses[1]}));
        r *= 2;
    }
    println!(
        "\nPaper claim check: consistent NMP is rank-count invariant (relerr at\n\
         machine precision); standard NMP deviation grows roughly linearly in R."
    );
    write_json("fig6_left", &json!({"reference": reference, "rows": rows}));
}
