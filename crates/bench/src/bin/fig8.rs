//! Regenerate paper Fig. 8: training throughput of the consistent model
//! (A2A and N-A2A halo exchanges) relative to the inconsistent no-exchange
//! baseline, isolating the cost of the 8 all-to-all calls per iteration.

use cgnn_bench::write_json;
use cgnn_perf::{paper_sweep, relative_throughput, MachineModel};
use serde_json::json;

fn main() {
    let machine = MachineModel::frontier();
    println!("Fig. 8: relative total throughput vs the no-exchange baseline\n");
    let series = paper_sweep(&machine);
    let mut out = Vec::new();
    for loading in ["512k", "256k"] {
        println!("=== {loading} nodes per sub-graph ===");
        print!("{:>6}", "ranks");
        let mut curves = Vec::new();
        for model in ["large", "small"] {
            for mode in ["A2A", "N-A2A", "Coal-AG", "Ovl-SR"] {
                let s = series
                    .iter()
                    .find(|s| s.loading == loading && s.model == model && s.mode == mode)
                    .expect("series exists");
                let base = series
                    .iter()
                    .find(|b| b.loading == loading && b.model == model && b.mode == "none")
                    .expect("baseline exists");
                print!(" {:>14}", format!("{model}-{mode}"));
                curves.push((model, mode, relative_throughput(s, base), s.points.clone()));
            }
        }
        println!();
        let n_points = curves[0].3.len();
        for i in 0..n_points {
            print!("{:>6}", curves[0].3[i].ranks);
            for (_, _, rel, _) in &curves {
                print!(" {:>14.3}", rel[i]);
            }
            println!();
        }
        for (model, mode, rel, points) in &curves {
            out.push(json!({
                "loading": loading, "model": model, "mode": mode,
                "ranks": points.iter().map(|p| p.ranks).collect::<Vec<_>>(),
                "relative_throughput": rel,
            }));
        }
        println!();
    }
    println!(
        "Paper claim checks:\n\
         - A2A cost becomes impractical as ranks grow (collapses below 0.3)\n\
         - N-A2A stays above 0.95 to 64 ranks and above 0.9 to 1024 ranks\n\
           (large model, 512k loading), with a dip at 2048\n\
         - smaller sub-graphs drop below 0.9 beyond ~128 ranks\n\
         - beyond the paper: Coal-AG (one fused all-gather per exchange)\n\
           tracks N-A2A at small rank counts but collapses like a ring —\n\
           its replicated buffers price the latency/bandwidth trade\n\
         - beyond the paper: Ovl-SR (non-blocking isend/irecv, posted before\n\
           waiting) dominates blocking N-A2A — the machine model's overlap\n\
           fraction of its transfer time hides behind the node MLP"
    );
    write_json("fig8", &out);
}
