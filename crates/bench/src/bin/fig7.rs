//! Regenerate paper Fig. 7: weak-scaling total throughput [nodes/s] and
//! efficiency [%] from 8 to 2048 ranks, for {small, large} x {256k, 512k}
//! x {None, A2A, N-A2A}, using the Frontier machine model plus a real
//! host calibration of this repository's GNN kernels.

use cgnn_bench::write_json;
use cgnn_core::GnnConfig;
use cgnn_perf::{measure_single_rank, paper_sweep, MachineModel};

fn main() {
    let machine = MachineModel::frontier();
    println!(
        "Fig. 7: weak-scaling throughput and efficiency ({})",
        machine.name
    );

    // Host calibration: real measured iteration of this implementation.
    let cal = measure_single_rank(GnnConfig::small(), 6, 2, 3);
    println!(
        "host calibration: {} nodes, {} edges -> {:.3} s/iter ({:.3e} nodes/s single-rank, this host)\n",
        cal.nodes, cal.edges, cal.seconds_per_iter, cal.nodes_per_sec
    );

    let series = paper_sweep(&machine);
    for s in &series {
        println!(
            "--- model={} loading={} mode={} ---",
            s.model, s.loading, s.mode
        );
        println!(
            "{:>6} {:>14} {:>14} {:>10} | {:>9} {:>9} {:>9}",
            "ranks", "total nodes", "nodes/s", "eff [%]", "compute", "halo", "allreduce"
        );
        let eff = s.efficiency();
        for (i, p) in s.points.iter().enumerate() {
            println!(
                "{:>6} {:>14.3e} {:>14.3e} {:>10.1} | {:>8.1}ms {:>8.1}ms {:>8.1}ms",
                p.ranks,
                p.total_nodes,
                p.throughput,
                eff[i],
                p.t_compute * 1e3,
                p.t_halo * 1e3,
                p.t_allreduce * 1e3
            );
        }
        println!();
    }
    println!(
        "Paper claim checks:\n\
         - total graph grows 4.15e6 (R=8) -> 1.1e9 (R=2048) nodes at 512k loading\n\
         - no-exchange baseline >90% efficient at 2048 ranks (512k loading)\n\
         - dense A2A scaling collapses; N-A2A stays efficient\n\
         - smaller loading (256k) and smaller model degrade beyond ~512 ranks"
    );
    write_json("fig7", &series);
}
