//! Hot-path throughput benchmark: training steps/sec and exchange-hidden
//! fraction across rank counts and halo-exchange modes.
//!
//! Sweeps `R x mode` (all built-in [`HaloExchangeMode`]s at `R > 1`; the
//! exchange is an identity at `R = 1`), measuring:
//!
//! * **steps/sec** — full training steps (forward, consistent loss,
//!   backward, fused DDP all-reduce, Adam) per wall-clock second, best of
//!   `CGNN_BENCH_REPS` repetitions (the machine this tracks runs on is a
//!   shared VM; best-of filters scheduler noise),
//! * **exchange-hidden fraction** — for the overlapped schedule (`Ovl-SR`),
//!   `window / (window + wait)` from `cgnn-core`'s overlap timers: the
//!   share of exchange latency hidden behind the interior-node MLP,
//! * **consistency** — the per-step loss trajectories of all consistent
//!   modes must be bit-identical at every `R` (asserted, recorded).
//!
//! Results are written to `BENCH_hotpath.json` at the repo root so the
//! perf trajectory is tracked in-tree. The committed file also records the
//! pre-PR baseline throughput measured at the default bench size on the
//! same machine, making the speedup auditable. Regenerate with:
//!
//! ```sh
//! cargo run --release -p cgnn-bench --bin hotpath
//! ```
//!
//! A `weak_scaling` section additionally sweeps the **backend axis**
//! (`CGNN_BENCH_BACKENDS`, default `threads,proc`) on a per-rank-constant
//! problem: the mesh doubles one axis per rank doubling, so every rank
//! always owns the same sub-problem and aggregate rank-throughput
//! (`ranks x steps/s`) is the weak-scaling figure of merit. Cross-process
//! cells re-exec this binary with a `--weak-worker` argv (the cell rides
//! in `CGNN_BENCH_WEAK`), and each rank process runs under the per-rank
//! thread budget (`max(1, cores / world)`).
//!
//! Env overrides: `CGNN_BENCH_ELEMS` (6), `CGNN_BENCH_POLY` (2),
//! `CGNN_BENCH_STEPS` (10), `CGNN_BENCH_WARMUP` (2), `CGNN_BENCH_REPS`
//! (3), `CGNN_BENCH_RANKS` ("1,2,4,8"), `CGNN_BENCH_MODEL`
//! ("small"/"large"), `CGNN_BENCH_BACKENDS` ("threads,proc"),
//! `CGNN_NUM_THREADS` (kernel worker pinning, overrides the budget).

use std::time::Instant;

use cgnn_bench::{env_usize, serde_json, BASELINE_STEPS_PER_SEC};
use cgnn_comm::{reexec_scope, Backend};
use cgnn_core::config;
use cgnn_core::mp_layer::overlap_stats;
use cgnn_core::{GnnConfig, HaloExchangeMode};
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_session::Session;
use serde_json::json;

/// One measured `R x mode` cell.
struct Cell {
    ranks: usize,
    mode: HaloExchangeMode,
    steps_per_sec: f64,
    hidden_fraction: f64,
    losses: Vec<f64>,
}

fn measure(session: &Session, mode: HaloExchangeMode, steps: usize, warmup: usize) -> Cell {
    let session = session.with_exchange(mode);
    let field = TaylorGreen::new(0.01);
    let per_rank = session.run(move |handle| {
        let data = handle.autoencode_data(&field, 0.0);
        for _ in 0..warmup {
            handle.step(&data);
        }
        overlap_stats::reset();
        handle.comm().barrier();
        let t0 = Instant::now();
        let losses: Vec<f64> = (0..steps).map(|_| handle.step(&data)).collect();
        handle.comm().barrier();
        let elapsed = t0.elapsed().as_secs_f64();
        (elapsed, overlap_stats::snapshot(), losses)
    });
    let elapsed = per_rank.iter().map(|(e, _, _)| *e).fold(0.0f64, f64::max);
    let windows: u64 = per_rank.iter().map(|(_, w, _)| w.windows).sum();
    let hidden = if windows == 0 {
        0.0
    } else {
        // Mean of per-rank hidden fractions, ranks without windows excluded.
        let (sum, n) = per_rank
            .iter()
            .filter(|(_, w, _)| w.windows > 0)
            .fold((0.0, 0u32), |(s, n), (_, w, _)| {
                (s + w.hidden_fraction(), n + 1)
            });
        sum / n.max(1) as f64
    };
    Cell {
        ranks: session.ranks(),
        mode,
        steps_per_sec: steps as f64 / elapsed,
        hidden_fraction: hidden,
        losses: per_rank.into_iter().next().expect("rank 0").2,
    }
}

/// One weak-scaling row: per-rank-constant problem at `ranks` on `backend`.
struct WeakRow {
    backend: Backend,
    ranks: usize,
    dims: (usize, usize, usize),
    steps_per_sec: f64,
    per_rank_threads: usize,
}

/// Per-rank-constant mesh for `ranks = 2^k`: one axis doubles per rank
/// doubling, so every rank always owns an `e^3`-element block.
fn weak_dims(e: usize, ranks: usize) -> Option<(usize, usize, usize)> {
    if !ranks.is_power_of_two() {
        return None;
    }
    let k = ranks.trailing_zeros() as usize;
    Some((e << k.div_ceil(3), e << ((k + 1) / 3), e << (k / 3)))
}

/// Measure one weak-scaling cell: a single launch (cross-process backends
/// re-exec into `weak_worker`), reps timed *inside* the SPMD region over
/// synchronized barriers, best rep wins. Returns rank 0's steps/sec.
fn weak_cell(
    backend: Backend,
    ranks: usize,
    dims: (usize, usize, usize),
    poly: usize,
    model: GnnConfig,
    steps: usize,
    warmup: usize,
    reps: usize,
) -> f64 {
    let mode = if ranks == 1 {
        HaloExchangeMode::None
    } else {
        HaloExchangeMode::NeighborAllToAll
    };
    let session = Session::builder()
        .mesh(BoxMesh::new(dims, poly, (1.0, 1.0, 1.0), false))
        .ranks(ranks)
        .exchange(mode)
        .backend(backend)
        .model(model)
        .seed(42)
        .learning_rate(1e-3)
        .build()
        .unwrap_or_else(|e| panic!("weak cell {}/R{ranks}: {e:?}", backend.label()));
    let field = TaylorGreen::new(0.01);
    let per_rank = session.run(move |handle| {
        let data = handle.autoencode_data(&field, 0.0);
        for _ in 0..warmup {
            handle.step(&data);
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            handle.comm().barrier();
            let t0 = Instant::now();
            for _ in 0..steps {
                handle.step(&data);
            }
            handle.comm().barrier();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    });
    steps as f64 / per_rank[0]
}

/// The cell a `--weak-worker` re-exec carries in `CGNN_BENCH_WEAK`:
/// `backend/ranks/elems/poly/model/steps/warmup/reps`.
fn encode_weak(backend: Backend, ranks: usize, e: usize, poly: usize, model: &str) -> String {
    format!("{}/{ranks}/{e}/{poly}/{model}", backend.label())
}

/// Child-rank entry point: re-exec'd processes land here (argv
/// `--weak-worker`), rebuild the cell from the environment, and join the
/// spawned world at the same launch the parent is waiting on.
fn weak_worker() {
    let cell = config::CGNN_BENCH_WEAK.string_or("");
    let parts: Vec<&str> = cell.split('/').collect();
    let [backend, ranks, e, poly, model] = parts.as_slice() else {
        panic!("malformed CGNN_BENCH_WEAK {cell:?}");
    };
    let backend = match *backend {
        "proc" => Backend::Proc,
        "socket" => Backend::Socket,
        other => panic!("unexpected weak-worker backend {other:?}"),
    };
    let ranks: usize = ranks.parse().expect("weak-worker ranks");
    let e: usize = e.parse().expect("weak-worker elems");
    let poly: usize = poly.parse().expect("weak-worker poly");
    let model = match *model {
        "large" => GnnConfig::large(),
        _ => GnnConfig::small(),
    };
    let steps = env_usize(&config::CGNN_BENCH_STEPS, 10);
    let warmup = env_usize(&config::CGNN_BENCH_WARMUP, 2);
    let reps = env_usize(&config::CGNN_BENCH_REPS, 3);
    let dims = weak_dims(e, ranks).expect("weak-worker rank count");
    let _scope = reexec_scope(["--weak-worker"]);
    weak_cell(backend, ranks, dims, poly, model, steps, warmup, reps);
}

fn main() {
    // Re-exec'd child ranks of a cross-process weak-scaling cell skip the
    // whole bench and join their world directly.
    if std::env::args().nth(1).as_deref() == Some("--weak-worker") {
        weak_worker();
        return;
    }
    let elems = env_usize(&config::CGNN_BENCH_ELEMS, 6);
    let poly = env_usize(&config::CGNN_BENCH_POLY, 2);
    let steps = env_usize(&config::CGNN_BENCH_STEPS, 10);
    let warmup = env_usize(&config::CGNN_BENCH_WARMUP, 2);
    let reps = env_usize(&config::CGNN_BENCH_REPS, 3);
    let model = config::CGNN_BENCH_MODEL.string_or("small");
    let config = match model.as_str() {
        "large" => GnnConfig::large(),
        _ => GnnConfig::small(),
    };
    let ranks: Vec<usize> = config::CGNN_BENCH_RANKS
        .string_or("1,2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    let mesh = BoxMesh::new((elems, elems, elems), poly, (1.0, 1.0, 1.0), false);
    let probe = Session::builder()
        .mesh(mesh.clone())
        .model(config)
        .seed(42)
        .build()
        .expect("probe session");
    let (nodes, edges) = (probe.graph(0).n_local(), probe.graph(0).n_edges());
    println!(
        "hotpath: {elems}^3 elements p={poly} ({nodes} nodes, {edges} edges), \
         model {model}, {steps} steps x {reps} reps (warmup {warmup})\n"
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>9}",
        "ranks", "mode", "steps/s", "ms/step", "hidden"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &r in &ranks {
        let session = Session::builder()
            .mesh(mesh.clone())
            .ranks(r)
            .model(config)
            .seed(42)
            .learning_rate(1e-3)
            .build()
            .unwrap_or_else(|e| panic!("R={r} session: {e:?}"));
        // The exchange is an identity at R = 1; sweep modes only beyond it.
        let modes: Vec<HaloExchangeMode> = if r == 1 {
            vec![HaloExchangeMode::None]
        } else {
            HaloExchangeMode::all().to_vec()
        };
        for mode in modes {
            let mut best: Option<Cell> = None;
            for _ in 0..reps {
                let cell = measure(&session, mode, steps, warmup);
                if best
                    .as_ref()
                    .is_none_or(|b| cell.steps_per_sec > b.steps_per_sec)
                {
                    best = Some(cell);
                }
            }
            let cell = best.expect("at least one rep");
            println!(
                "{:>6} {:>10} {:>12.3} {:>12.3} {:>9.3}",
                cell.ranks,
                cell.mode,
                cell.steps_per_sec,
                1e3 / cell.steps_per_sec,
                cell.hidden_fraction
            );
            cells.push(cell);
        }
    }

    // Weak-scaling sweep across the backend axis: per-rank-constant
    // problem, one launch per cell (cross-process cells re-exec this
    // binary with `--weak-worker`; ranks that are not a power of two are
    // skipped and logged, never silently dropped).
    let backends: Vec<Backend> = config::CGNN_BENCH_BACKENDS
        .string_or("threads,proc")
        .split(',')
        .filter_map(|s| match s.trim() {
            "" => None,
            "threads" => Some(Backend::Threads),
            "serial" => Some(Backend::Serial),
            "proc" => Some(Backend::Proc),
            "socket" => Some(Backend::Socket),
            other => {
                eprintln!("weak scaling: skipping unknown backend {other:?}");
                None
            }
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nweak scaling: per-rank-constant {elems}^3-element block, N-A2A, \
         {cores} core(s), budget max(1, cores/world)"
    );
    println!(
        "{:>8} {:>6} {:>14} {:>12} {:>14} {:>8}",
        "backend", "ranks", "mesh", "steps/s", "agg(r*st/s)", "threads"
    );
    let mut weak_rows: Vec<WeakRow> = Vec::new();
    for &backend in &backends {
        for &r in &ranks {
            let Some(dims) = weak_dims(elems, r) else {
                eprintln!("weak scaling: skipping R={r} (not a power of two)");
                continue;
            };
            // Cross-process worlds beyond one rank spawn children that
            // re-enter through `--weak-worker`; everything else launches
            // in-process with no re-exec protocol.
            let sps = if backend.is_in_process() || r == 1 {
                weak_cell(backend, r, dims, poly, config, steps, warmup, reps)
            } else {
                std::env::set_var(
                    config::CGNN_BENCH_WEAK.name,
                    encode_weak(backend, r, elems, poly, &model),
                );
                let _scope = reexec_scope(["--weak-worker"]);
                weak_cell(backend, r, dims, poly, config, steps, warmup, reps)
            };
            let row = WeakRow {
                backend,
                ranks: r,
                dims,
                steps_per_sec: sps,
                per_rank_threads: config::per_rank_thread_budget(cores, r),
            };
            println!(
                "{:>8} {:>6} {:>14} {:>12.3} {:>14.3} {:>8}",
                row.backend.label(),
                row.ranks,
                format!("{}x{}x{}", row.dims.0, row.dims.1, row.dims.2),
                row.steps_per_sec,
                row.steps_per_sec * row.ranks as f64,
                row.per_rank_threads,
            );
            weak_rows.push(row);
        }
    }
    assert!(
        weak_rows
            .iter()
            .all(|w| w.steps_per_sec.is_finite() && w.steps_per_sec > 0.0),
        "non-positive weak-scaling throughput"
    );

    // Invariants the CI perf-smoke relies on.
    let consistent_ok = ranks.iter().all(|&r| {
        let consistent: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.ranks == r && c.mode.is_consistent())
            .collect();
        consistent.windows(2).all(|p| {
            if p[0].losses != p[1].losses {
                eprintln!(
                    "R={r}: consistent modes {} and {} diverged",
                    p[0].mode, p[1].mode
                );
            }
            p[0].losses == p[1].losses
        })
    });
    assert!(consistent_ok, "consistent exchange modes diverged");
    for c in &cells {
        assert!(
            c.steps_per_sec.is_finite() && c.steps_per_sec > 0.0,
            "non-positive throughput"
        );
        assert!(
            (0.0..=1.0).contains(&c.hidden_fraction),
            "hidden fraction out of range"
        );
        if c.mode == HaloExchangeMode::Overlapped {
            assert!(
                c.hidden_fraction > 0.0,
                "overlapped mode opened no compute window"
            );
        }
    }

    // The committed baseline is an R=1 measurement at the default bench
    // size: a run only yields a comparable speedup when it uses that size
    // AND actually swept R=1. Without the rank check, a
    // `CGNN_BENCH_RANKS=2,4` run at default size would fold `r1` over an
    // empty set (0.0) and silently publish a 0x "speedup" as comparable.
    let default_size = elems == 6 && poly == 2 && model == "small" && steps == 10;
    let baseline_comparable = default_size && ranks.contains(&1);
    let r1 = cells
        .iter()
        .filter(|c| c.ranks == 1)
        .map(|c| c.steps_per_sec)
        .fold(0.0f64, f64::max);
    assert!(
        !baseline_comparable || r1 > 0.0,
        "comparable run produced no R=1 throughput"
    );
    let json = json!({
        "bench": "hotpath",
        "mesh": {"elems": elems, "poly": poly, "nodes": nodes, "edges": edges},
        "model": model,
        "protocol": {
            "steps": steps,
            "warmup": warmup,
            "reps": reps,
            "metric": "best-of-reps wall-clock steps/sec (shared-VM noise filter)",
        },
        "baseline": {
            "steps_per_sec": BASELINE_STEPS_PER_SEC,
            "note": "pre-PR commit 2c6dbcf, R=1, default bench size, same machine/methodology",
            "applies_to_this_run": baseline_comparable,
        },
        "speedup_vs_baseline": if baseline_comparable { Some(r1 / BASELINE_STEPS_PER_SEC) } else { None },
        "consistent_modes_bit_identical": consistent_ok,
        "results": cells.iter().map(|c| json!({
            "backend": "threads",
            "ranks": c.ranks,
            "mode": c.mode.label(),
            "steps_per_sec": c.steps_per_sec,
            "ms_per_step": 1e3 / c.steps_per_sec,
            "exchange_hidden_fraction": c.hidden_fraction,
            "final_loss": c.losses.last(),
        })).collect::<Vec<_>>(),
        "weak_scaling": {
            "protocol": "per-rank-constant problem: the mesh doubles one axis per rank \
                         doubling so every rank owns an elems^3 block; N-A2A exchange; \
                         steps/s is rank 0's best-of-reps over synchronized barriers; \
                         aggregate rank-throughput (ranks x steps/s) is the weak-scaling \
                         figure of merit and is flat under ideal weak scaling",
            "cores": cores,
            "thread_budget": "max(1, cores / world), unless CGNN_NUM_THREADS pins it",
            "mode": "N-A2A",
            "rows": weak_rows.iter().map(|w| json!({
                "backend": w.backend.label(),
                "ranks": w.ranks,
                "mesh_elems": [w.dims.0, w.dims.1, w.dims.2],
                "steps_per_sec": w.steps_per_sec,
                "agg_rank_steps_per_sec": w.steps_per_sec * w.ranks as f64,
                "per_rank_threads": w.per_rank_threads,
            })).collect::<Vec<_>>(),
        },
    });
    let path = "BENCH_hotpath.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write BENCH_hotpath.json");
    println!("\n[wrote {path}]");
    if baseline_comparable {
        println!(
            "R=1 throughput {:.3} steps/s = {:.2}x the pre-PR baseline ({:.3} steps/s)",
            r1,
            r1 / BASELINE_STEPS_PER_SEC,
            BASELINE_STEPS_PER_SEC
        );
    }
}
