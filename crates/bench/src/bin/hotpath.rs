//! Hot-path throughput benchmark: training steps/sec and exchange-hidden
//! fraction across rank counts and halo-exchange modes.
//!
//! Sweeps `R x mode` (all built-in [`HaloExchangeMode`]s at `R > 1`; the
//! exchange is an identity at `R = 1`), measuring:
//!
//! * **steps/sec** — full training steps (forward, consistent loss,
//!   backward, fused DDP all-reduce, Adam) per wall-clock second, best of
//!   `CGNN_BENCH_REPS` repetitions (the machine this tracks runs on is a
//!   shared VM; best-of filters scheduler noise),
//! * **exchange-hidden fraction** — for the overlapped schedule (`Ovl-SR`),
//!   `window / (window + wait)` from `cgnn-core`'s overlap timers: the
//!   share of exchange latency hidden behind the interior-node MLP,
//! * **consistency** — the per-step loss trajectories of all consistent
//!   modes must be bit-identical at every `R` (asserted, recorded).
//!
//! Results are written to `BENCH_hotpath.json` at the repo root so the
//! perf trajectory is tracked in-tree. The committed file also records the
//! pre-PR baseline throughput measured at the default bench size on the
//! same machine, making the speedup auditable. Regenerate with:
//!
//! ```sh
//! cargo run --release -p cgnn-bench --bin hotpath
//! ```
//!
//! Env overrides: `CGNN_BENCH_ELEMS` (6), `CGNN_BENCH_POLY` (2),
//! `CGNN_BENCH_STEPS` (10), `CGNN_BENCH_WARMUP` (2), `CGNN_BENCH_REPS`
//! (3), `CGNN_BENCH_RANKS` ("1,2,4,8"), `CGNN_BENCH_MODEL`
//! ("small"/"large"), `CGNN_NUM_THREADS` (kernel worker pinning).

use std::time::Instant;

use cgnn_bench::{env_usize, serde_json, BASELINE_STEPS_PER_SEC};
use cgnn_core::config;
use cgnn_core::mp_layer::overlap_stats;
use cgnn_core::{GnnConfig, HaloExchangeMode};
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_session::Session;
use serde_json::json;

/// One measured `R x mode` cell.
struct Cell {
    ranks: usize,
    mode: HaloExchangeMode,
    steps_per_sec: f64,
    hidden_fraction: f64,
    losses: Vec<f64>,
}

fn measure(session: &Session, mode: HaloExchangeMode, steps: usize, warmup: usize) -> Cell {
    let session = session.with_exchange(mode);
    let field = TaylorGreen::new(0.01);
    let per_rank = session.run(move |handle| {
        let data = handle.autoencode_data(&field, 0.0);
        for _ in 0..warmup {
            handle.step(&data);
        }
        overlap_stats::reset();
        handle.comm().barrier();
        let t0 = Instant::now();
        let losses: Vec<f64> = (0..steps).map(|_| handle.step(&data)).collect();
        handle.comm().barrier();
        let elapsed = t0.elapsed().as_secs_f64();
        (elapsed, overlap_stats::snapshot(), losses)
    });
    let elapsed = per_rank.iter().map(|(e, _, _)| *e).fold(0.0f64, f64::max);
    let windows: u64 = per_rank.iter().map(|(_, w, _)| w.windows).sum();
    let hidden = if windows == 0 {
        0.0
    } else {
        // Mean of per-rank hidden fractions, ranks without windows excluded.
        let (sum, n) = per_rank
            .iter()
            .filter(|(_, w, _)| w.windows > 0)
            .fold((0.0, 0u32), |(s, n), (_, w, _)| {
                (s + w.hidden_fraction(), n + 1)
            });
        sum / n.max(1) as f64
    };
    Cell {
        ranks: session.ranks(),
        mode,
        steps_per_sec: steps as f64 / elapsed,
        hidden_fraction: hidden,
        losses: per_rank.into_iter().next().expect("rank 0").2,
    }
}

fn main() {
    let elems = env_usize(&config::CGNN_BENCH_ELEMS, 6);
    let poly = env_usize(&config::CGNN_BENCH_POLY, 2);
    let steps = env_usize(&config::CGNN_BENCH_STEPS, 10);
    let warmup = env_usize(&config::CGNN_BENCH_WARMUP, 2);
    let reps = env_usize(&config::CGNN_BENCH_REPS, 3);
    let model = config::CGNN_BENCH_MODEL.string_or("small");
    let config = match model.as_str() {
        "large" => GnnConfig::large(),
        _ => GnnConfig::small(),
    };
    let ranks: Vec<usize> = config::CGNN_BENCH_RANKS
        .string_or("1,2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    let mesh = BoxMesh::new((elems, elems, elems), poly, (1.0, 1.0, 1.0), false);
    let probe = Session::builder()
        .mesh(mesh.clone())
        .model(config)
        .seed(42)
        .build()
        .expect("probe session");
    let (nodes, edges) = (probe.graph(0).n_local(), probe.graph(0).n_edges());
    println!(
        "hotpath: {elems}^3 elements p={poly} ({nodes} nodes, {edges} edges), \
         model {model}, {steps} steps x {reps} reps (warmup {warmup})\n"
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>9}",
        "ranks", "mode", "steps/s", "ms/step", "hidden"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &r in &ranks {
        let session = Session::builder()
            .mesh(mesh.clone())
            .ranks(r)
            .model(config)
            .seed(42)
            .learning_rate(1e-3)
            .build()
            .unwrap_or_else(|e| panic!("R={r} session: {e:?}"));
        // The exchange is an identity at R = 1; sweep modes only beyond it.
        let modes: Vec<HaloExchangeMode> = if r == 1 {
            vec![HaloExchangeMode::None]
        } else {
            HaloExchangeMode::all().to_vec()
        };
        for mode in modes {
            let mut best: Option<Cell> = None;
            for _ in 0..reps {
                let cell = measure(&session, mode, steps, warmup);
                if best
                    .as_ref()
                    .is_none_or(|b| cell.steps_per_sec > b.steps_per_sec)
                {
                    best = Some(cell);
                }
            }
            let cell = best.expect("at least one rep");
            println!(
                "{:>6} {:>10} {:>12.3} {:>12.3} {:>9.3}",
                cell.ranks,
                cell.mode,
                cell.steps_per_sec,
                1e3 / cell.steps_per_sec,
                cell.hidden_fraction
            );
            cells.push(cell);
        }
    }

    // Invariants the CI perf-smoke relies on.
    let consistent_ok = ranks.iter().all(|&r| {
        let consistent: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.ranks == r && c.mode.is_consistent())
            .collect();
        consistent.windows(2).all(|p| {
            if p[0].losses != p[1].losses {
                eprintln!(
                    "R={r}: consistent modes {} and {} diverged",
                    p[0].mode, p[1].mode
                );
            }
            p[0].losses == p[1].losses
        })
    });
    assert!(consistent_ok, "consistent exchange modes diverged");
    for c in &cells {
        assert!(
            c.steps_per_sec.is_finite() && c.steps_per_sec > 0.0,
            "non-positive throughput"
        );
        assert!(
            (0.0..=1.0).contains(&c.hidden_fraction),
            "hidden fraction out of range"
        );
        if c.mode == HaloExchangeMode::Overlapped {
            assert!(
                c.hidden_fraction > 0.0,
                "overlapped mode opened no compute window"
            );
        }
    }

    // The committed baseline is an R=1 measurement at the default bench
    // size: a run only yields a comparable speedup when it uses that size
    // AND actually swept R=1. Without the rank check, a
    // `CGNN_BENCH_RANKS=2,4` run at default size would fold `r1` over an
    // empty set (0.0) and silently publish a 0x "speedup" as comparable.
    let default_size = elems == 6 && poly == 2 && model == "small" && steps == 10;
    let baseline_comparable = default_size && ranks.contains(&1);
    let r1 = cells
        .iter()
        .filter(|c| c.ranks == 1)
        .map(|c| c.steps_per_sec)
        .fold(0.0f64, f64::max);
    assert!(
        !baseline_comparable || r1 > 0.0,
        "comparable run produced no R=1 throughput"
    );
    let json = json!({
        "bench": "hotpath",
        "mesh": {"elems": elems, "poly": poly, "nodes": nodes, "edges": edges},
        "model": model,
        "protocol": {
            "steps": steps,
            "warmup": warmup,
            "reps": reps,
            "metric": "best-of-reps wall-clock steps/sec (shared-VM noise filter)",
        },
        "baseline": {
            "steps_per_sec": BASELINE_STEPS_PER_SEC,
            "note": "pre-PR commit 2c6dbcf, R=1, default bench size, same machine/methodology",
            "applies_to_this_run": baseline_comparable,
        },
        "speedup_vs_baseline": if baseline_comparable { Some(r1 / BASELINE_STEPS_PER_SEC) } else { None },
        "consistent_modes_bit_identical": consistent_ok,
        "results": cells.iter().map(|c| json!({
            "ranks": c.ranks,
            "mode": c.mode.label(),
            "steps_per_sec": c.steps_per_sec,
            "ms_per_step": 1e3 / c.steps_per_sec,
            "exchange_hidden_fraction": c.hidden_fraction,
            "final_loss": c.losses.last(),
        })).collect::<Vec<_>>(),
    });
    let path = "BENCH_hotpath.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write BENCH_hotpath.json");
    println!("\n[wrote {path}]");
    if baseline_comparable {
        println!(
            "R=1 throughput {:.3} steps/s = {:.2}x the pre-PR baseline ({:.3} steps/s)",
            r1,
            r1 / BASELINE_STEPS_PER_SEC,
            BASELINE_STEPS_PER_SEC
        );
    }
}
