//! Regenerate paper Table II: per-rank statistics of partitioned sub-graphs
//! at nominally 512k local nodes per rank (p = 5 elements, periodic TGV
//! box), for R in {8, 64, 512, 2048}.
//!
//! Uses the closed-form structured statistics (validated against the real
//! graph builder in the test suite), so the 2048-rank / 1.1e9-node case
//! runs in milliseconds.

use cgnn_bench::write_json;
use cgnn_graph::{analytic_block_stats, summarize};
use cgnn_mesh::BoxMesh;
use cgnn_perf::cubic_layout;
use serde_json::json;

fn main() {
    // 16^3 elements per rank at p = 5 -> (5*16+1)^3 = 531k local nodes.
    let block = 16;
    let p = 5;
    println!("Table II: statistics of partitioned sub-graphs, nominally 512k local nodes");
    println!(
        "{:>6} | {:>26} | {:>26} | {:>20}",
        "Ranks", "Graph nodes (10^3)", "Halo nodes (10^3)", "Neighbors"
    );
    println!(
        "{:>6} | {:>26} | {:>26} | {:>20}",
        "", "(min, max, avg)", "(min, max, avg)", "(min, max, avg)"
    );
    let mut rows = Vec::new();
    for ranks in [8usize, 64, 512, 2048] {
        let layout = cubic_layout(ranks);
        let mesh = BoxMesh::new(
            (layout.rx * block, layout.ry * block, layout.rz * block),
            p,
            (1.0, 1.0, 1.0),
            true,
        );
        let stats = analytic_block_stats(&mesh, &layout);
        let s = summarize(&stats);
        let total: usize = stats.iter().map(|r| r.local_nodes).sum();
        println!(
            "{:>6} | {:>8.1}, {:>7.1}, {:>7.1} | {:>8.1}, {:>7.1}, {:>7.1} | {:>6}, {:>5}, {:>5.1}",
            ranks,
            s.local_nodes.0 as f64 / 1e3,
            s.local_nodes.1 as f64 / 1e3,
            s.local_nodes.2 / 1e3,
            s.halo_nodes.0 as f64 / 1e3,
            s.halo_nodes.1 as f64 / 1e3,
            s.halo_nodes.2 / 1e3,
            s.neighbors.0,
            s.neighbors.1,
            s.neighbors.2,
        );
        rows.push(json!({
            "ranks": ranks,
            "layout": [layout.rx, layout.ry, layout.rz],
            "total_local_nodes": total,
            "local_nodes": {"min": s.local_nodes.0, "max": s.local_nodes.1, "avg": s.local_nodes.2},
            "halo_nodes": {"min": s.halo_nodes.0, "max": s.halo_nodes.1, "avg": s.halo_nodes.2},
            "neighbors": {"min": s.neighbors.0, "max": s.neighbors.1, "avg": s.neighbors.2},
        }));
    }
    println!(
        "\nPaper (NekRS partitioner):  R=8: 518k nodes, 12.8k halo, 2 nbrs;\n\
         R=64/2048: 540k nodes, 57.6k halo, 11 nbrs; R=512: 528-544k, 32.6-67.6k, 5-15.\n\
         Our structured partitioner keeps blocks cubic at every R, so halo and\n\
         neighbour counts are uniform and bounded (max 26), preserving the\n\
         paper's load-balance claim; exact neighbour counts differ because the\n\
         NekRS recursive-spectral-bisection partitioner produces different cuts."
    );
    write_json("table2", &rows);
}
