//! Regenerate paper Fig. 6 (right): training-loss curves for the target
//! R=1 un-partitioned GNN, a distributed GNN with consistent NMP layers
//! (R=8), and one with standard NMP layers (R=8) — one `Session` each.
//!
//! `CGNN_ITERS` sets the iteration count (paper: 1500; default 200),
//! `CGNN_ELEMS` the cubic element count (paper: 32 at p=1; default 8).

use cgnn_bench::{env_usize, write_json};
use cgnn_core::HaloExchangeMode;
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_partition::Strategy;
use cgnn_session::Session;
use serde_json::json;

const SEED: u64 = 99;
const LR: f64 = 1e-3;

fn main() {
    let iters = env_usize("CGNN_ITERS", 200);
    let elems = env_usize("CGNN_ELEMS", 8);
    let mesh = BoxMesh::new((elems, elems, elems), 1, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    println!(
        "Fig. 6 (right): training curves; {}^3 elements p=1 ({} nodes), {} iterations",
        elems,
        mesh.num_global_nodes(),
        iters
    );
    // One wiring per rank count; the mode sweep swaps only the exchange.
    let session = |r: usize| {
        Session::builder()
            .mesh(mesh.clone())
            .partition(Strategy::Block)
            .ranks(r)
            .seed(SEED)
            .learning_rate(LR)
            .build()
            .expect("session")
    };

    let target = session(1)
        .train_autoencode(&field, 0.0, iters)
        .pop()
        .expect("history");

    let r8 = session(8);
    let curves: Vec<Vec<f64>> = [HaloExchangeMode::NeighborAllToAll, HaloExchangeMode::None]
        .into_iter()
        .map(|mode| {
            r8.with_exchange(mode)
                .train_autoencode(&field, 0.0, iters)
                .pop()
                .expect("history")
        })
        .collect();

    println!(
        "\n{:>6} {:>16} {:>18} {:>16}",
        "iter", "target (R=1)", "consistent (R=8)", "standard (R=8)"
    );
    for i in (0..iters).step_by((iters / 15).max(1)) {
        println!(
            "{:>6} {:>16.8e} {:>18.8e} {:>16.8e}",
            i, target[i], curves[0][i], curves[1][i]
        );
    }
    let last = iters - 1;
    println!(
        "\nfinal relative deviation from target: consistent {:.2e}, standard {:.2e}",
        (curves[0][last] - target[last]).abs() / target[last],
        (curves[1][last] - target[last]).abs() / target[last]
    );
    println!(
        "Paper claim check: the consistent R=8 curve recovers the R=1 curve\n\
         (deviation at rounding level); the standard curve visibly drifts."
    );
    write_json(
        "fig6_right",
        &json!({"target": target, "consistent": curves[0], "standard": curves[1]}),
    );
}
