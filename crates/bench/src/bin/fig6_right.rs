//! Regenerate paper Fig. 6 (right), widened to a snapshot stream:
//! per-epoch training-loss curves for the target R=1 un-partitioned GNN, a
//! distributed GNN with consistent NMP layers (R=8), and one with standard
//! NMP layers (R=8) — one `Session` each, all walking the identical
//! shuffled mini-batch order over a four-snapshot Taylor-Green dataset.
//!
//! `CGNN_ITERS` sets the epoch count (default 100), `CGNN_ELEMS` the cubic
//! element count (paper: 32 at p=1; default 8).

use cgnn_bench::{env_usize, write_json};
use cgnn_core::config;
use cgnn_core::HaloExchangeMode;
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_partition::Strategy;
use cgnn_session::{Dataset, Session};
use serde_json::json;

const SEED: u64 = 99;
const LR: f64 = 1e-3;

fn main() {
    let epochs = env_usize(&config::CGNN_ITERS, 100) as u64;
    let elems = env_usize(&config::CGNN_ELEMS, 8);
    let mesh = BoxMesh::new((elems, elems, elems), 1, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    // Four snapshots of the decaying field, two per optimizer step.
    let times = [0.0, 0.15, 0.3, 0.45];
    println!(
        "Fig. 6 (right): training curves; {}^3 elements p=1 ({} nodes), \
         {} snapshots, {} epochs",
        elems,
        mesh.num_global_nodes(),
        times.len(),
        epochs
    );
    // One wiring per rank count; the mode sweep swaps only the exchange.
    let session = |r: usize| {
        Session::builder()
            .mesh(mesh.clone())
            .partition(Strategy::Block)
            .ranks(r)
            .dataset(Dataset::tgv_autoencode(&mesh, &field, &times).batch_size(2))
            .seed(SEED)
            .learning_rate(LR)
            .build()
            .expect("session")
    };
    let epoch_means = |reports: Vec<cgnn_core::EpochReport>| -> Vec<f64> {
        reports.iter().map(|r| r.mean_loss()).collect()
    };

    let target = epoch_means(session(1).train_epochs(epochs).pop().expect("reports"));

    let r8 = session(8);
    let curves: Vec<Vec<f64>> = [HaloExchangeMode::NeighborAllToAll, HaloExchangeMode::None]
        .into_iter()
        .map(|mode| {
            epoch_means(
                r8.with_exchange(mode)
                    .train_epochs(epochs)
                    .pop()
                    .expect("reports"),
            )
        })
        .collect();

    println!(
        "\n{:>6} {:>16} {:>18} {:>16}",
        "epoch", "target (R=1)", "consistent (R=8)", "standard (R=8)"
    );
    let e = epochs as usize;
    for i in (0..e).step_by((e / 15).max(1)) {
        println!(
            "{:>6} {:>16.8e} {:>18.8e} {:>16.8e}",
            i, target[i], curves[0][i], curves[1][i]
        );
    }
    let last = e - 1;
    println!(
        "\nfinal relative deviation from target: consistent {:.2e}, standard {:.2e}",
        (curves[0][last] - target[last]).abs() / target[last],
        (curves[1][last] - target[last]).abs() / target[last]
    );
    println!(
        "Paper claim check: the consistent R=8 curve recovers the R=1 curve\n\
         (deviation at rounding level) over the full shuffled snapshot\n\
         stream; the standard curve visibly drifts."
    );
    write_json(
        "fig6_right",
        &json!({"target": target, "consistent": curves[0], "standard": curves[1]}),
    );
}
