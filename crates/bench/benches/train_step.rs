//! Criterion benchmark of the full training step — the end-to-end hot path
//! (forward, consistent loss, backward, fused DDP all-reduce, Adam) whose
//! throughput `BENCH_hotpath.json` tracks.
//!
//! Runs single-rank on the [`LoopbackBackend`] so the trainer lives on the
//! benchmark thread and Criterion's timing loop wraps the real
//! [`Trainer::step`] — steady-state tape workspace included, comm noise
//! excluded.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use cgnn_comm::LoopbackBackend;
use cgnn_core::{GnnConfig, HaloContext, RankData, Trainer};
use cgnn_graph::build_global_graph;
use cgnn_mesh::{BoxMesh, TaylorGreen};

fn bench_step_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    let mesh = BoxMesh::new((4, 4, 4), 2, (1.0, 1.0, 1.0), false);
    let graph = Arc::new(build_global_graph(&mesh));
    let field = TaylorGreen::new(0.01);
    for (label, config) in [("small", GnnConfig::small()), ("large", GnnConfig::large())] {
        let ctx = HaloContext::single(LoopbackBackend::comm());
        let mut trainer = Trainer::new(config, 42, 1e-3, ctx);
        let data = RankData::tgv_autoencode(Arc::clone(&graph), &field, 0.0);
        trainer.step(&data); // warm the buffer pool
        group.bench_function(format!("step_{label}_4x4x4_p2"), |b| {
            b.iter(|| trainer.step(&data))
        });
        // Mini-batches amortize the all-reduce: one fused reduction for the
        // whole batch, which is the epoch-training configuration.
        let batch = [&data, &data];
        group.bench_function(format!("step_batch2_{label}_4x4x4_p2"), |b| {
            b.iter(|| trainer.step_batch(&batch))
        });
        // Inference batching: one stacked forward over the whole batch vs
        // the same predictions one at a time (the cgnn-serve data plane's
        // amortization, bit-identical by construction).
        let pbatch = [&data, &data, &data, &data];
        group.bench_function(format!("predict_batch4_{label}_4x4x4_p2"), |b| {
            b.iter(|| trainer.predict_batch(&pbatch))
        });
        group.bench_function(format!("predict_x4_{label}_4x4x4_p2"), |b| {
            b.iter(|| {
                for d in pbatch {
                    std::hint::black_box(trainer.predict(d));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step_batch);
criterion_main!(benches);
