//! Kernel-level benchmarks of the autodiff substrate: the dense products,
//! gather/scatter, and MLP passes that dominate the compute term of the
//! weak-scaling model (calibration inputs for Fig. 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use cgnn_tensor::init::uniform;
use cgnn_tensor::{Mlp, ParamSet, Tape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &(m, k, n) in &[
        (4096usize, 24usize, 8usize),
        (4096, 96, 32),
        (16384, 96, 32),
    ] {
        let a = uniform(m, k, 1.0, &mut rng);
        let b = uniform(k, n, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(),
            |bch, _| bch.iter(|| a.matmul(&b)),
        );
    }
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_scatter");
    let mut rng = StdRng::seed_from_u64(2);
    let rows = 100_000;
    let cols = 32;
    let x = uniform(rows, cols, 1.0, &mut rng);
    let idx: Vec<usize> = (0..6 * rows).map(|i| (i * 2654435761) % rows).collect();
    group.throughput(Throughput::Elements((idx.len() * cols) as u64));
    group.bench_function("gather_600k_rows_x32", |b| b.iter(|| x.gather_rows(&idx)));
    let g = x.gather_rows(&idx);
    group.bench_function("scatter_add_600k_rows_x32", |b| {
        b.iter(|| g.scatter_add_rows(&idx, rows))
    });
    group.finish();
}

fn bench_mlp_forward_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp");
    group.sample_size(20);
    for (label, hidden, n_hidden) in [("small", 8usize, 2usize), ("large", 32, 5)] {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            &mut params,
            "m",
            3 * hidden,
            hidden,
            hidden,
            n_hidden,
            true,
            &mut rng,
        );
        let x = uniform(50_000, 3 * hidden, 1.0, &mut rng);
        group.throughput(Throughput::Elements(50_000));
        group.bench_function(format!("forward_{label}_50k_rows"), |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let bound = params.bind(&mut tape);
                let xv = tape.leaf(x.clone());
                mlp.forward(&mut tape, &bound, xv)
            })
        });
        group.bench_function(format!("forward_backward_{label}_50k_rows"), |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let bound = params.bind(&mut tape);
                let xv = tape.leaf(x.clone());
                let y = mlp.forward(&mut tape, &bound, xv);
                let w = Arc::new(vec![1.0; 50_000]);
                let s = tape.weighted_sq_sum(y, w);
                tape.backward(s)
            })
        });
    }
    group.finish();
}

fn bench_layernorm_elu(c: &mut Criterion) {
    let mut group = c.benchmark_group("activations");
    let mut rng = StdRng::seed_from_u64(4);
    let x = uniform(100_000, 32, 2.0, &mut rng);
    let gamma = Tensor::full(1, 32, 1.0);
    let beta = Tensor::zeros(1, 32);
    group.throughput(Throughput::Elements(100_000 * 32));
    group.bench_function("layer_norm_100k_x32", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let g = tape.leaf(gamma.clone());
            let bt = tape.leaf(beta.clone());
            tape.layer_norm(xv, g, bt, 1e-5)
        })
    });
    group.bench_function("elu_100k_x32", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            tape.elu(xv)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gather_scatter,
    bench_mlp_forward_backward,
    bench_layernorm_elu
);
criterion_main!(benches);
