//! Benchmarks of the spectral-element substrate: stiffness application,
//! gather-scatter (the solver twin of the GNN halo sync), and a full
//! RK4 diffusion step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cgnn_mesh::BoxMesh;
use cgnn_sem::{DiffusionSolver, ElementOps, GatherScatter};

fn bench_stiffness(c: &mut Criterion) {
    let mut group = c.benchmark_group("sem_stiffness");
    for p in [2usize, 5, 7] {
        let mesh = BoxMesh::new((2, 2, 2), p, (1.0, 1.0, 1.0), false);
        let ops = ElementOps::new(&mesh);
        let n3 = mesh.nodes_per_element();
        let u: Vec<f64> = (0..n3).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut out = vec![0.0; n3];
        let mut scratch = vec![0.0; n3];
        group.throughput(Throughput::Elements(n3 as u64));
        group.bench_function(format!("apply_p{p}"), |b| {
            b.iter(|| ops.apply_stiffness(&u, &mut out, &mut scratch))
        });
    }
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("sem_gather_scatter");
    let mesh = BoxMesh::new((6, 6, 6), 3, (1.0, 1.0, 1.0), false);
    let gs = GatherScatter::new(&mesh);
    let mut local = vec![1.0; gs.slot_gid.len()];
    group.throughput(Throughput::Elements(local.len() as u64));
    group.bench_function("dssum_6x6x6_p3", |b| b.iter(|| gs.dssum(&mut local)));
    group.finish();
}

fn bench_rk4_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sem_rk4");
    group.sample_size(10);
    let tau = 2.0 * std::f64::consts::PI;
    let mesh = BoxMesh::new((4, 4, 4), 4, (tau, tau, tau), true);
    let solver = DiffusionSolver::new(&mesh, 0.1);
    let mut u: Vec<f64> = (0..solver.n_dofs())
        .map(|i| (i as f64 * 0.01).sin())
        .collect();
    group.throughput(Throughput::Elements(solver.n_dofs() as u64));
    group.bench_function("step_4x4x4_p4", |b| {
        b.iter(|| solver.rk4_step(&mut u, 1e-6))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stiffness,
    bench_gather_scatter,
    bench_rk4_step
);
criterion_main!(benches);
