//! Benchmarks of distributed graph generation (paper Sec. II-A pipeline)
//! and of the closed-form Table II statistics path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cgnn_graph::{analytic_block_profiles, build_distributed_graph, build_global_graph};
use cgnn_mesh::BoxMesh;
use cgnn_partition::{Layout, Partition, Strategy};
use cgnn_perf::cubic_layout;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for (label, e, p) in [("8x8x8_p2", 8usize, 2usize), ("4x4x4_p5", 4, 5)] {
        let mesh = BoxMesh::new((e, e, e), p, (1.0, 1.0, 1.0), false);
        group.throughput(Throughput::Elements(mesh.num_global_nodes() as u64));
        group.bench_function(format!("global_{label}"), |b| {
            b.iter(|| build_global_graph(&mesh))
        });
        let part = Partition::new(&mesh, 8, Strategy::Block);
        group.bench_function(format!("distributed_r8_{label}"), |b| {
            b.iter(|| build_distributed_graph(&mesh, &part))
        });
    }
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners");
    let mesh = BoxMesh::new((16, 16, 16), 1, (1.0, 1.0, 1.0), false);
    for strategy in [Strategy::Slab, Strategy::Block, Strategy::Rcb] {
        group.bench_function(format!("{strategy:?}_r16_4096_elems"), |b| {
            b.iter(|| Partition::new(&mesh, 16, strategy))
        });
    }
    group.finish();
}

fn bench_analytic_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_analytic_stats");
    // The Frontier-scale case: 2048 ranks, 1.1e9 total nodes.
    let layout: Layout = cubic_layout(2048);
    let mesh = BoxMesh::new(
        (layout.rx * 16, layout.ry * 16, layout.rz * 16),
        5,
        (1.0, 1.0, 1.0),
        true,
    );
    group.bench_function("r2048_1.1e9_nodes", |b| {
        b.iter(|| analytic_block_profiles(&mesh, &layout))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_partitioners,
    bench_analytic_stats
);
criterion_main!(benches);
