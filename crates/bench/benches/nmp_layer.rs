//! Benchmarks of the consistent NMP layer and the halo exchange modes —
//! the measured counterpart of the paper's Fig. 7/8 cost decomposition:
//! one bench per halo-exchange implementation at R = 8 thread-ranks, plus
//! single-rank layer forward/backward as the compute baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

use cgnn_comm::World;
use cgnn_core::{
    halo_exchange_apply, ConsistentGnn, GnnConfig, GraphIndices, HaloContext, HaloExchangeMode,
    RankData, Trainer,
};
use cgnn_graph::{build_distributed_graph, build_global_graph, LocalGraph};
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_partition::{Partition, Strategy};
use cgnn_tensor::{Tape, Tensor};

/// Single-rank full-model forward+backward+update: the compute term.
fn bench_training_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_iteration_single_rank");
    group.sample_size(10);
    let mesh = BoxMesh::tgv_cube(6, 2);
    let graph = Arc::new(build_global_graph(&mesh));
    let field = TaylorGreen::new(0.01);
    group.throughput(Throughput::Elements(graph.n_local() as u64));
    for (label, config) in [("small", GnnConfig::small()), ("large", GnnConfig::large())] {
        let g = Arc::clone(&graph);
        group.bench_function(format!("{label}_{}_nodes", graph.n_local()), |b| {
            b.iter_custom(|iters| {
                let g = Arc::clone(&g);
                World::run(1, move |comm| {
                    let ctx = HaloContext::single(comm.clone());
                    let mut t = Trainer::new(config, 1, 1e-4, ctx);
                    let data = RankData::tgv_autoencode(Arc::clone(&g), &field, 0.0);
                    t.step(&data); // warm-up
                    let start = std::time::Instant::now();
                    for _ in 0..iters {
                        t.step(&data);
                    }
                    start.elapsed()
                })
                .pop()
                .expect("one result")
            })
        });
    }
    group.finish();
}

/// Raw halo exchange cost per mode at R = 8 (paper Fig. 8's isolated cost).
fn bench_halo_exchange_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_exchange_r8");
    group.sample_size(10);
    let mesh = BoxMesh::new((8, 8, 8), 2, (1.0, 1.0, 1.0), false);
    let part = Partition::new(&mesh, 8, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let hidden = 32;
    for mode in [
        HaloExchangeMode::AllToAll,
        HaloExchangeMode::NeighborAllToAll,
        HaloExchangeMode::SendRecv,
        HaloExchangeMode::Coalesced,
    ] {
        let graphs = Arc::clone(&graphs);
        group.bench_function(mode.label(), |b| {
            b.iter_custom(|iters| {
                let graphs = Arc::clone(&graphs);
                let times = World::run(8, move |comm| {
                    let g = Arc::clone(&graphs[comm.rank()]);
                    let ctx = HaloContext::new(comm.clone(), &g, mode);
                    let a = Tensor::from_fn(g.n_local(), hidden, |r, c| (r + c) as f64);
                    comm.barrier();
                    let start = std::time::Instant::now();
                    for _ in 0..iters {
                        let _ = halo_exchange_apply(&a, &g, &ctx);
                    }
                    start.elapsed()
                });
                times.into_iter().max().expect("eight results")
            })
        });
    }
    group.finish();
}

/// Full-model forward pass per exchange mode at R = 8: end-to-end relative
/// cost of consistency (the measured analogue of Fig. 8).
fn bench_consistent_forward_r8(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnn_forward_r8");
    group.sample_size(10);
    let mesh = BoxMesh::new((8, 8, 8), 1, (1.0, 1.0, 1.0), false);
    let part = Partition::new(&mesh, 8, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    for mode in [
        HaloExchangeMode::None,
        HaloExchangeMode::AllToAll,
        HaloExchangeMode::NeighborAllToAll,
        HaloExchangeMode::Coalesced,
    ] {
        let graphs = Arc::clone(&graphs);
        group.bench_function(mode.label(), |b| {
            b.iter_custom(|iters| {
                let graphs = Arc::clone(&graphs);
                let times = World::run(8, move |comm| {
                    let g = Arc::clone(&graphs[comm.rank()]);
                    let ctx = HaloContext::new(comm.clone(), &g, mode);
                    let (params, model) = ConsistentGnn::seeded(GnnConfig::small(), 3);
                    let idx = GraphIndices::from_graph(&g);
                    let x0 = Tensor::from_fn(g.n_local(), 3, |r, c| (r * 3 + c) as f64 * 1e-4);
                    let e0 = Tensor::from_fn(g.n_edges(), 7, |r, c| (r + c) as f64 * 1e-5);
                    comm.barrier();
                    let start = std::time::Instant::now();
                    for _ in 0..iters {
                        let mut tape = Tape::new();
                        let bound = params.bind(&mut tape);
                        let x = tape.leaf(x0.clone());
                        let e = tape.leaf(e0.clone());
                        let _ = model.forward(&mut tape, &bound, x, e, &g, &idx, &ctx);
                    }
                    start.elapsed()
                });
                times.into_iter().max().expect("eight results")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_training_iteration,
    bench_halo_exchange_modes,
    bench_consistent_forward_r8
);
criterion_main!(benches);
