//! The weak-scaling simulator regenerating the paper's Figs. 7-8.
//!
//! For each `(model, loading, halo mode, rank count)` configuration it
//! derives per-rank graph profiles analytically (closed form, validated
//! against the real graph builder), prices one training iteration with the
//! machine model, and reports total throughput [nodes/s], weak-scaling
//! efficiency, and throughput relative to the inconsistent (no-exchange)
//! baseline.

use cgnn_core::{GnnConfig, HaloExchangeMode};
use cgnn_graph::{analytic_block_profiles, RankProfile};
use cgnn_mesh::BoxMesh;
use cgnn_partition::Layout;
use serde::Serialize;

use crate::collective_model::{
    all_gather_time, all_reduce_time, dense_all_to_all_time, neighbor_all_to_all_time,
    overlapped_neighbor_time,
};
use crate::gnn_cost::{compute_time, iteration_work, param_count};
use crate::machine::MachineModel;

/// A per-rank loading (paper: nominally 256k or 512k nodes per sub-graph,
/// p = 5 hexahedral elements).
#[derive(Debug, Clone, Serialize)]
pub struct Loading {
    pub name: String,
    /// Elements per rank per axis (cubic block).
    pub block: usize,
    /// Polynomial order.
    pub p: usize,
}

impl Loading {
    /// ~512k local nodes: 16^3 elements at p=5 -> (5*16+1)^3 = 531k.
    pub fn nominal_512k() -> Self {
        Loading {
            name: "512k".into(),
            block: 16,
            p: 5,
        }
    }

    /// ~256k local nodes: 12^3 elements at p=5 -> 61^3 = 227k (the paper's
    /// "256k" class; blocks need not be perfect cubes there).
    pub fn nominal_256k() -> Self {
        Loading {
            name: "256k".into(),
            block: 12,
            p: 5,
        }
    }
}

/// One point of a weak-scaling series.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    pub ranks: usize,
    /// Sum of per-rank local nodes (the paper's "total graph nodes").
    pub total_nodes: f64,
    /// Modeled time of one training iteration \[s\] (max over ranks).
    pub iter_time: f64,
    /// Total throughput [nodes/s].
    pub throughput: f64,
    /// Time breakdown \[s\]: compute, halo, all-reduce (loss + gradients).
    pub t_compute: f64,
    pub t_halo: f64,
    pub t_allreduce: f64,
}

/// A full weak-scaling curve for one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingSeries {
    pub model: String,
    pub loading: String,
    pub mode: String,
    pub points: Vec<ScalingPoint>,
}

impl ScalingSeries {
    /// Weak-scaling efficiency [%] relative to the first point.
    pub fn efficiency(&self) -> Vec<f64> {
        let base = self
            .points
            .first()
            .map(|p| p.throughput / p.ranks as f64)
            .unwrap_or(1.0);
        self.points
            .iter()
            .map(|p| 100.0 * (p.throughput / p.ranks as f64) / base)
            .collect()
    }
}

/// Near-cubic 3D factorization of `r` (most balanced process grid).
pub fn cubic_layout(r: usize) -> Layout {
    let mut best = Layout::new(1, 1, r);
    let mut best_score = usize::MAX;
    for rx in 1..=r {
        if !r.is_multiple_of(rx) {
            continue;
        }
        let rest = r / rx;
        for ry in 1..=rest {
            if !rest.is_multiple_of(ry) {
                continue;
            }
            let rz = rest / ry;
            let dims = [rx, ry, rz];
            let hi = dims.iter().max().expect("dims is a fixed 3-element array");
            let lo = dims.iter().min().expect("dims is a fixed 3-element array");
            let score = hi - lo;
            if score < best_score {
                best_score = score;
                best = Layout::new(rx, ry, rz);
            }
        }
    }
    best
}

/// Model one training iteration for every rank; returns the slowest rank's
/// breakdown (bulk-synchronous step time).
fn iteration_time(
    machine: &MachineModel,
    config: &GnnConfig,
    mode: HaloExchangeMode,
    ranks: usize,
    profiles: &[RankProfile],
) -> (f64, f64, f64, f64) {
    // Halo exchanges per iteration: forward + backward per MP layer.
    let exchanges = 2.0 * config.n_mp_layers as f64;
    let bytes_per_shared = (config.hidden * 8) as f64;
    let max_shared = profiles
        .iter()
        .flat_map(|p| p.shared_per_neighbor.iter().map(|&(_, s)| s))
        .max()
        .unwrap_or(0);
    let grad_bytes = (param_count(config) * 8) as f64;
    // Three scalar all-reduces (two in the consistent loss forward, one in
    // its backward) plus the fused gradient all-reduce.
    let t_ar =
        3.0 * all_reduce_time(machine, ranks, 8.0) + all_reduce_time(machine, ranks, grad_bytes);

    let mut worst = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (rank, prof) in profiles.iter().enumerate() {
        let work = iteration_work(
            config,
            prof.stats.local_nodes as f64,
            prof.stats.directed_edges as f64,
        );
        let t_c = compute_time(machine, &work);
        let t_h = match mode {
            HaloExchangeMode::None => 0.0,
            HaloExchangeMode::AllToAll => {
                exchanges
                    * dense_all_to_all_time(machine, ranks, max_shared as f64 * bytes_per_shared)
            }
            HaloExchangeMode::Coalesced => {
                // The fused buffer holds every neighbour's exact payload.
                let fused_bytes = prof.stats.halo_nodes as f64 * bytes_per_shared;
                exchanges * all_gather_time(machine, ranks, fused_bytes)
            }
            HaloExchangeMode::Overlapped => {
                // Non-blocking schedule: the machine model's overlap
                // fraction of the transfer hides behind the previous
                // layer's node MLP; only posting + the exposed remainder
                // is charged.
                exchanges
                    * overlapped_neighbor_time(
                        machine,
                        rank,
                        ranks,
                        prof,
                        bytes_per_shared,
                        machine.overlap_fraction,
                    )
            }
            // `HaloExchangeMode` is non-exhaustive; the neighbour-exact cost
            // (N-A2A / Send-Recv) is the default for any mode that ships
            // exact halos peer to peer. New collectives get their own arm.
            _ => exchanges * neighbor_all_to_all_time(machine, rank, ranks, prof, bytes_per_shared),
        };
        let total = t_c + t_h + t_ar;
        if total > worst.0 {
            worst = (total, t_c, t_h, t_ar);
        }
    }
    worst
}

/// Run the weak-scaling sweep for one `(model, loading, mode)` tuple over
/// `rank_counts` (paper Fig. 7: 8 to 2048 in powers of two).
pub fn weak_scaling_series(
    machine: &MachineModel,
    model_name: &str,
    config: &GnnConfig,
    loading: &Loading,
    mode: HaloExchangeMode,
    rank_counts: &[usize],
) -> ScalingSeries {
    let points = rank_counts
        .iter()
        .map(|&r| {
            let layout = cubic_layout(r);
            let dims = (
                layout.rx * loading.block,
                layout.ry * loading.block,
                layout.rz * loading.block,
            );
            let mesh = BoxMesh::new(dims, loading.p, (1.0, 1.0, 1.0), true);
            let profiles = analytic_block_profiles(&mesh, &layout);
            let total_nodes: f64 = profiles.iter().map(|p| p.stats.local_nodes as f64).sum();
            let (t, t_c, t_h, t_ar) = iteration_time(machine, config, mode, r, &profiles);
            ScalingPoint {
                ranks: r,
                total_nodes,
                iter_time: t,
                throughput: total_nodes / t,
                t_compute: t_c,
                t_halo: t_h,
                t_allreduce: t_ar,
            }
        })
        .collect();
    ScalingSeries {
        model: model_name.to_string(),
        loading: loading.name.clone(),
        mode: mode.label().to_string(),
        points,
    }
}

/// The full paper sweep: {small, large} x {256k, 512k} x {None, A2A, N-A2A,
/// Coal-AG, Ovl-SR} over ranks 8..=2048 — the paper's three exchange
/// settings plus the coalesced fused-buffer and overlapped non-blocking
/// extensions as fourth and fifth priced curves.
pub fn paper_sweep(machine: &MachineModel) -> Vec<ScalingSeries> {
    let ranks: Vec<usize> = (3..=11).map(|k| 1usize << k).collect(); // 8..2048
    let mut out = Vec::new();
    for (name, config) in [("small", GnnConfig::small()), ("large", GnnConfig::large())] {
        for loading in [Loading::nominal_256k(), Loading::nominal_512k()] {
            for mode in [
                HaloExchangeMode::None,
                HaloExchangeMode::AllToAll,
                HaloExchangeMode::NeighborAllToAll,
                HaloExchangeMode::Coalesced,
                HaloExchangeMode::Overlapped,
            ] {
                out.push(weak_scaling_series(
                    machine, name, &config, &loading, mode, &ranks,
                ));
            }
        }
    }
    out
}

/// Throughput of `series` relative to the matching no-exchange baseline
/// (paper Fig. 8).
pub fn relative_throughput(series: &ScalingSeries, baseline: &ScalingSeries) -> Vec<f64> {
    assert_eq!(series.points.len(), baseline.points.len());
    series
        .points
        .iter()
        .zip(&baseline.points)
        .map(|(s, b)| {
            assert_eq!(s.ranks, b.ranks);
            s.throughput / b.throughput
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_layout_prefers_cubes() {
        assert_eq!(cubic_layout(8), Layout::new(2, 2, 2));
        assert_eq!(cubic_layout(64), Layout::new(4, 4, 4));
        let l = cubic_layout(2048); // 2^11 -> 8 x 16 x 16
        let mut dims = [l.rx, l.ry, l.rz];
        dims.sort_unstable();
        assert_eq!(dims, [8, 16, 16]);
    }

    #[test]
    fn total_graph_grows_linearly_with_ranks() {
        // Paper: 4.15e6 nodes at R=8 to 1.105e9 at R=2048 for 512k loading.
        let m = MachineModel::frontier();
        let s = weak_scaling_series(
            &m,
            "large",
            &GnnConfig::large(),
            &Loading::nominal_512k(),
            HaloExchangeMode::None,
            &[8, 2048],
        );
        let n8 = s.points[0].total_nodes;
        let n2048 = s.points[1].total_nodes;
        assert!((n8 - 4.15e6).abs() / 4.15e6 < 0.05, "n8 = {n8:e}");
        assert!(
            (n2048 - 1.105e9).abs() / 1.105e9 < 0.05,
            "n2048 = {n2048:e}"
        );
    }

    #[test]
    fn inconsistent_baseline_scales_above_90_percent() {
        // Paper: no-exchange model keeps >90% weak-scaling efficiency to
        // 2048 ranks at the larger loading.
        let m = MachineModel::frontier();
        let ranks: Vec<usize> = (3..=11).map(|k| 1usize << k).collect();
        for config in [GnnConfig::small(), GnnConfig::large()] {
            let s = weak_scaling_series(
                &m,
                "m",
                &config,
                &Loading::nominal_512k(),
                HaloExchangeMode::None,
                &ranks,
            );
            let eff = s.efficiency();
            assert!(
                eff.last().unwrap() > &90.0,
                "hidden={} eff={eff:?}",
                config.hidden
            );
        }
    }

    #[test]
    fn dense_a2a_becomes_impractical_at_scale() {
        // Paper Fig. 8: A2A relative throughput collapses with rank count.
        let m = MachineModel::frontier();
        let ranks: Vec<usize> = (3..=11).map(|k| 1usize << k).collect();
        let config = GnnConfig::large();
        let loading = Loading::nominal_512k();
        let base = weak_scaling_series(
            &m,
            "large",
            &config,
            &loading,
            HaloExchangeMode::None,
            &ranks,
        );
        let a2a = weak_scaling_series(
            &m,
            "large",
            &config,
            &loading,
            HaloExchangeMode::AllToAll,
            &ranks,
        );
        let rel = relative_throughput(&a2a, &base);
        assert!(rel[0] > 0.5, "A2A at 8 ranks should be tolerable: {rel:?}");
        assert!(
            rel.last().unwrap() < &0.3,
            "A2A at 2048 ranks should collapse: {rel:?}"
        );
    }

    #[test]
    fn neighbor_a2a_adds_marginal_cost() {
        // Paper Fig. 8: N-A2A stays above ~0.9 relative throughput for the
        // large model / large loading through 1024 ranks, dipping at 2048.
        let m = MachineModel::frontier();
        let ranks: Vec<usize> = (3..=11).map(|k| 1usize << k).collect();
        let config = GnnConfig::large();
        let loading = Loading::nominal_512k();
        let base = weak_scaling_series(
            &m,
            "large",
            &config,
            &loading,
            HaloExchangeMode::None,
            &ranks,
        );
        let na2a = weak_scaling_series(
            &m,
            "large",
            &config,
            &loading,
            HaloExchangeMode::NeighborAllToAll,
            &ranks,
        );
        let rel = relative_throughput(&na2a, &base);
        for (i, &r) in ranks.iter().enumerate() {
            if r <= 1024 {
                assert!(
                    rel[i] > 0.85,
                    "N-A2A relative throughput at {r}: {}",
                    rel[i]
                );
            }
        }
        assert!(rel.iter().all(|&x| x <= 1.0 + 1e-9));
    }

    /// The coalesced fused-buffer exchange trades per-message overhead for
    /// replicated bandwidth: it must collapse with rank count (like dense
    /// A2A, unlike N-A2A) while staying cheaper than dense A2A, whose
    /// padded buffers carry dummy traffic on top of the replication.
    #[test]
    fn coalesced_sits_between_na2a_and_dense_a2a_at_scale() {
        let m = MachineModel::frontier();
        let ranks: Vec<usize> = (3..=11).map(|k| 1usize << k).collect();
        let config = GnnConfig::large();
        let loading = Loading::nominal_512k();
        let series = |mode| weak_scaling_series(&m, "large", &config, &loading, mode, &ranks);
        let base = series(HaloExchangeMode::None);
        let rel = |mode| relative_throughput(&series(mode), &base);
        let coal = rel(HaloExchangeMode::Coalesced);
        let na2a = rel(HaloExchangeMode::NeighborAllToAll);
        let dense = rel(HaloExchangeMode::AllToAll);
        let last = ranks.len() - 1;
        assert!(
            coal[last] < na2a[last],
            "coalesced must collapse at 2048 ranks: coal {} vs na2a {}",
            coal[last],
            na2a[last]
        );
        assert!(
            coal[last] > dense[last],
            "coalesced ships exact halos, so it beats padded dense A2A: {} vs {}",
            coal[last],
            dense[last]
        );
    }

    /// The overlapped schedule can only hide cost, never add it: its
    /// relative throughput must dominate blocking N-A2A at every rank
    /// count (and strictly so at scale, where halo time is material), and
    /// more overlap must help monotonically.
    #[test]
    fn overlapped_dominates_blocking_neighbor_exchange() {
        let m = MachineModel::frontier();
        let ranks: Vec<usize> = (3..=11).map(|k| 1usize << k).collect();
        let config = GnnConfig::large();
        let loading = Loading::nominal_512k();
        let series = |m: &MachineModel, mode| {
            weak_scaling_series(m, "large", &config, &loading, mode, &ranks)
        };
        let base = series(&m, HaloExchangeMode::None);
        let na2a = relative_throughput(&series(&m, HaloExchangeMode::NeighborAllToAll), &base);
        let ovl = relative_throughput(&series(&m, HaloExchangeMode::Overlapped), &base);
        for (i, &r) in ranks.iter().enumerate() {
            assert!(
                ovl[i] >= na2a[i] - 1e-12,
                "overlap must not cost extra at {r} ranks: {} vs {}",
                ovl[i],
                na2a[i]
            );
            assert!(ovl[i] <= 1.0 + 1e-9, "cannot beat the no-exchange baseline");
        }
        let last = ranks.len() - 1;
        assert!(
            ovl[last] > na2a[last],
            "hidden transfer must show at 2048 ranks: {} vs {}",
            ovl[last],
            na2a[last]
        );
        // Sweeping the overlap fraction: more hiding, more throughput.
        let mut prev = na2a[last];
        for f in [0.3, 0.6, 0.9] {
            let mut machine = MachineModel::frontier();
            machine.overlap_fraction = f;
            let base = series(&machine, HaloExchangeMode::None);
            let rel = relative_throughput(&series(&machine, HaloExchangeMode::Overlapped), &base);
            assert!(
                rel[last] >= prev - 1e-12,
                "overlap fraction {f} regressed: {} vs {prev}",
                rel[last]
            );
            prev = rel[last];
        }
    }

    #[test]
    fn smaller_loading_scales_worse() {
        // Paper: the 256k loading loses efficiency faster than 512k.
        let m = MachineModel::frontier();
        let ranks: Vec<usize> = (3..=11).map(|k| 1usize << k).collect();
        let config = GnnConfig::small();
        let eff_of = |loading: Loading| {
            weak_scaling_series(
                &m,
                "s",
                &config,
                &loading,
                HaloExchangeMode::NeighborAllToAll,
                &ranks,
            )
            .efficiency()
            .last()
            .copied()
            .unwrap()
        };
        let e512 = eff_of(Loading::nominal_512k());
        let e256 = eff_of(Loading::nominal_256k());
        assert!(
            e256 < e512,
            "256k eff {e256} should be below 512k eff {e512}"
        );
    }
}
