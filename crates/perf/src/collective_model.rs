//! Alpha-beta cost models for the collectives the consistent GNN issues:
//! ring all-reduce (loss + DDP gradients), dense all-to-all (A2A halo
//! exchange), neighbour all-to-all (N-A2A halo exchange), ring all-gather
//! (the coalesced fused-buffer halo exchange), and the overlapped
//! non-blocking neighbour exchange whose transfer time is partially hidden
//! behind compute.

use cgnn_graph::RankProfile;

use crate::machine::MachineModel;

/// Ring all-reduce of `bytes` across `ranks` ranks. Hierarchical model:
/// the inter-node ring over the job's nodes is the bottleneck once the job
/// spans multiple nodes.
pub fn all_reduce_time(machine: &MachineModel, ranks: usize, bytes: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let n_nodes = machine.nodes_for(ranks);
    if n_nodes <= 1 {
        // Intra-node ring over GPU links.
        let steps = 2 * (ranks - 1);
        steps as f64 * machine.intra_latency
            + 2.0 * (ranks - 1) as f64 / ranks as f64 * bytes / machine.intra_bw
    } else {
        // Hierarchical reduce-scatter + all-gather: ring bandwidth term
        // across node NICs, but tree-depth latency (RCCL's tree/collnet
        // algorithms give O(log N) latency, not the ring's O(N)).
        let depth = (n_nodes as f64).log2().ceil();
        let intra = 2.0 * bytes / machine.intra_bw
            + 2.0 * (machine.ranks_per_node - 1) as f64 * machine.intra_latency;
        let inter = 2.0 * depth * machine.inter_latency
            + 2.0 * (n_nodes - 1) as f64 / n_nodes as f64 * bytes
                / (machine.node_nic_bw / machine.contention.mul_add((n_nodes as f64).log2(), 1.0));
        intra + inter
    }
}

/// Dense all-to-all with uniform buffers of `buf_bytes` from every rank to
/// every other rank (the paper's naive A2A halo exchange). Every rank sends
/// `ranks - 1` messages; traffic to off-node peers shares the NIC.
pub fn dense_all_to_all_time(machine: &MachineModel, ranks: usize, buf_bytes: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let n_nodes = machine.nodes_for(ranks);
    let on_node_peers = (machine.ranks_per_node.min(ranks) - 1) as f64;
    let off_node_peers = (ranks - 1) as f64 - on_node_peers;
    let intra_time = on_node_peers * (machine.msg_overhead + buf_bytes / machine.intra_bw);
    let inter_time = off_node_peers
        * (machine.msg_overhead + buf_bytes / machine.effective_inter_bw(n_nodes))
        + if off_node_peers > 0.0 {
            machine.inter_latency
        } else {
            0.0
        };
    intra_time + inter_time + machine.intra_latency
}

/// Ring all-gather of one `contrib_bytes` fused buffer per rank (the
/// coalesced halo exchange): a single collective entry — no per-neighbour
/// message overheads — but every rank's contribution circulates the whole
/// ring, so the bandwidth term grows with `ranks`. Cheap at modest rank
/// counts where per-message overhead dominates N-A2A; collapses at scale
/// like the dense A2A, only with smaller (exact-halo) buffers.
pub fn all_gather_time(machine: &MachineModel, ranks: usize, contrib_bytes: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let n_nodes = machine.nodes_for(ranks);
    if n_nodes <= 1 {
        let steps = (ranks - 1) as f64;
        machine.intra_latency + steps * contrib_bytes / machine.intra_bw
    } else {
        // Hierarchical ring: intra-node gather, then the inter-node ring of
        // node-aggregated buffers over the NICs (the bottleneck), with
        // tree-depth latency as in the all-reduce model.
        let depth = (n_nodes as f64).log2().ceil();
        let intra = machine.intra_latency
            + (machine.ranks_per_node - 1) as f64 * contrib_bytes / machine.intra_bw;
        let node_bytes = machine.ranks_per_node as f64 * contrib_bytes;
        let inter = depth * machine.inter_latency
            + (n_nodes - 1) as f64 * node_bytes
                / (machine.node_nic_bw / machine.contention.mul_add((n_nodes as f64).log2(), 1.0));
        intra + inter
    }
}

/// Neighbour all-to-all: only real neighbour buffers are exchanged (the
/// empty-tensor trick). Per-rank time is the serialized cost of its own
/// messages — neighbour counts are bounded (<= 26), so this stays flat in R.
pub fn neighbor_all_to_all_time(
    machine: &MachineModel,
    rank: usize,
    ranks: usize,
    profile: &RankProfile,
    bytes_per_shared_node: f64,
) -> f64 {
    if ranks <= 1 || profile.shared_per_neighbor.is_empty() {
        return 0.0;
    }
    let n_nodes = machine.nodes_for(ranks);
    let mut t = machine.intra_latency; // collective entry overhead
    for &(nbr, shared) in &profile.shared_per_neighbor {
        let bytes = shared as f64 * bytes_per_shared_node;
        t += machine.msg_overhead;
        t += if machine.same_node(rank, nbr) {
            bytes / machine.intra_bw
        } else {
            bytes / machine.effective_inter_bw(n_nodes)
        };
        if !machine.same_node(rank, nbr) {
            t += machine.inter_latency / profile.shared_per_neighbor.len() as f64;
        }
    }
    t
}

/// Exposed (non-hidden) time of one overlapped neighbour exchange
/// (`Ovl-SR`): the Send-Recv schedule rebuilt on non-blocking
/// `isend`/`irecv`, with a fraction `overlap_fraction` of the *transfer*
/// time hidden behind independent compute.
///
/// Posting costs cannot be hidden — the CPU/GPU still has to inject one
/// message per neighbour plus the collective-entry overhead — so the model
/// splits the N-A2A cost into an un-hidable posting term (entry latency +
/// per-message overheads) and a hidable transfer term (bandwidth + wire
/// latency), and discounts only the latter:
///
/// `t = posting + (1 - f) * transfer`
///
/// At `f = 0` this degenerates to exactly
/// [`neighbor_all_to_all_time`]; at `f = 1` only the posting overhead
/// remains.
pub fn overlapped_neighbor_time(
    machine: &MachineModel,
    rank: usize,
    ranks: usize,
    profile: &RankProfile,
    bytes_per_shared_node: f64,
    overlap_fraction: f64,
) -> f64 {
    if ranks <= 1 || profile.shared_per_neighbor.is_empty() {
        return 0.0;
    }
    let f = overlap_fraction.clamp(0.0, 1.0);
    let n_msgs = profile.shared_per_neighbor.len() as f64;
    let posting = machine.intra_latency + n_msgs * machine.msg_overhead;
    let full = neighbor_all_to_all_time(machine, rank, ranks, profile, bytes_per_shared_node);
    let transfer = (full - posting).max(0.0);
    posting + (1.0 - f) * transfer
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_graph::{RankGraphStats, RankProfile};

    fn profile(neighbors: &[(usize, usize)]) -> RankProfile {
        RankProfile {
            stats: RankGraphStats {
                local_nodes: 0,
                halo_nodes: neighbors.iter().map(|&(_, s)| s).sum(),
                neighbors: neighbors.len(),
                directed_edges: 0,
            },
            shared_per_neighbor: neighbors.to_vec(),
        }
    }

    #[test]
    fn dense_a2a_grows_linearly_with_ranks() {
        let m = MachineModel::frontier();
        let t64 = dense_all_to_all_time(&m, 64, 64.0 * 1024.0);
        let t1024 = dense_all_to_all_time(&m, 1024, 64.0 * 1024.0);
        assert!(t1024 > 10.0 * t64, "t64={t64} t1024={t1024}");
    }

    #[test]
    fn neighbor_a2a_is_flat_in_rank_count() {
        let m = MachineModel::frontier();
        let p = profile(&[(100, 3600), (200, 3600), (300, 60), (400, 1)]);
        let t64 = neighbor_all_to_all_time(&m, 0, 64, &p, 256.0);
        let t2048 = neighbor_all_to_all_time(&m, 0, 2048, &p, 256.0);
        assert!(t2048 < 2.0 * t64, "t64={t64} t2048={t2048}");
    }

    #[test]
    fn neighbor_a2a_beats_dense_a2a_at_scale() {
        let m = MachineModel::frontier();
        let p = profile(&[(9, 3600); 11]);
        let bytes_per_node = 32.0 * 8.0;
        let dense = dense_all_to_all_time(&m, 2048, 3600.0 * bytes_per_node);
        let nbr = neighbor_all_to_all_time(&m, 0, 2048, &p, bytes_per_node);
        assert!(nbr < dense / 10.0, "dense={dense} nbr={nbr}");
    }

    #[test]
    fn all_gather_beats_na2a_latency_at_small_scale_only() {
        let m = MachineModel::frontier();
        // Tiny per-neighbour buffers, many neighbours: message overhead
        // dominates N-A2A, so a single fused collective wins on one node...
        let p = profile(&[(1, 8), (2, 8), (3, 8), (4, 8), (5, 8), (6, 8), (7, 8)]);
        let fused_bytes = 7.0 * 8.0 * 64.0;
        let gather8 = all_gather_time(&m, 8, fused_bytes);
        let na2a8 = neighbor_all_to_all_time(&m, 0, 8, &p, 64.0);
        assert!(gather8 < na2a8, "gather {gather8} vs na2a {na2a8}");
        // ...but the ring grows with rank count while N-A2A stays flat.
        let gather2048 = all_gather_time(&m, 2048, fused_bytes);
        let na2a2048 = neighbor_all_to_all_time(&m, 0, 2048, &p, 64.0);
        assert!(gather2048 > na2a2048, "{gather2048} vs {na2a2048}");
    }

    #[test]
    fn all_gather_grows_with_ranks() {
        let m = MachineModel::frontier();
        let t8 = all_gather_time(&m, 8, 1e6);
        let t2048 = all_gather_time(&m, 2048, 1e6);
        assert!(t2048 > 10.0 * t8, "t8={t8} t2048={t2048}");
        assert_eq!(all_gather_time(&m, 1, 1e6), 0.0);
    }

    #[test]
    fn overlap_discounts_transfer_but_never_posting() {
        let m = MachineModel::frontier();
        let p = profile(&[(9, 3600); 11]);
        let bytes_per_node = 32.0 * 8.0;
        let full = neighbor_all_to_all_time(&m, 0, 2048, &p, bytes_per_node);
        // f = 0 degenerates to the blocking neighbour exchange.
        let f0 = overlapped_neighbor_time(&m, 0, 2048, &p, bytes_per_node, 0.0);
        assert!((f0 - full).abs() < 1e-15, "{f0} vs {full}");
        // Monotonically cheaper as more transfer hides behind compute.
        let f5 = overlapped_neighbor_time(&m, 0, 2048, &p, bytes_per_node, 0.5);
        let f9 = overlapped_neighbor_time(&m, 0, 2048, &p, bytes_per_node, 0.9);
        let f1 = overlapped_neighbor_time(&m, 0, 2048, &p, bytes_per_node, 1.0);
        assert!(f0 > f5 && f5 > f9 && f9 > f1, "{f0} {f5} {f9} {f1}");
        // Even at full overlap the injection overheads remain.
        let posting = m.intra_latency + 11.0 * m.msg_overhead;
        assert!((f1 - posting).abs() < 1e-12, "{f1} vs {posting}");
        // Degenerate cases stay free.
        assert_eq!(overlapped_neighbor_time(&m, 0, 1, &p, 256.0, 0.5), 0.0);
        assert_eq!(
            overlapped_neighbor_time(&m, 0, 64, &profile(&[]), 256.0, 0.5),
            0.0
        );
    }

    #[test]
    fn all_reduce_time_increases_with_bytes_and_ranks() {
        let m = MachineModel::frontier();
        assert!(all_reduce_time(&m, 8, 1e6) < all_reduce_time(&m, 8, 1e8));
        assert!(all_reduce_time(&m, 8, 1e6) < all_reduce_time(&m, 2048, 1e6));
        assert_eq!(all_reduce_time(&m, 1, 1e6), 0.0);
    }
}
