//! Alpha-beta cost models for the collectives the consistent GNN issues:
//! ring all-reduce (loss + DDP gradients), dense all-to-all (A2A halo
//! exchange), and neighbour all-to-all (N-A2A halo exchange).

use cgnn_graph::RankProfile;

use crate::machine::MachineModel;

/// Ring all-reduce of `bytes` across `ranks` ranks. Hierarchical model:
/// the inter-node ring over the job's nodes is the bottleneck once the job
/// spans multiple nodes.
pub fn all_reduce_time(machine: &MachineModel, ranks: usize, bytes: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let n_nodes = machine.nodes_for(ranks);
    if n_nodes <= 1 {
        // Intra-node ring over GPU links.
        let steps = 2 * (ranks - 1);
        steps as f64 * machine.intra_latency
            + 2.0 * (ranks - 1) as f64 / ranks as f64 * bytes / machine.intra_bw
    } else {
        // Hierarchical reduce-scatter + all-gather: ring bandwidth term
        // across node NICs, but tree-depth latency (RCCL's tree/collnet
        // algorithms give O(log N) latency, not the ring's O(N)).
        let depth = (n_nodes as f64).log2().ceil();
        let intra = 2.0 * bytes / machine.intra_bw
            + 2.0 * (machine.ranks_per_node - 1) as f64 * machine.intra_latency;
        let inter = 2.0 * depth * machine.inter_latency
            + 2.0 * (n_nodes - 1) as f64 / n_nodes as f64 * bytes
                / (machine.node_nic_bw / machine.contention.mul_add((n_nodes as f64).log2(), 1.0));
        intra + inter
    }
}

/// Dense all-to-all with uniform buffers of `buf_bytes` from every rank to
/// every other rank (the paper's naive A2A halo exchange). Every rank sends
/// `ranks - 1` messages; traffic to off-node peers shares the NIC.
pub fn dense_all_to_all_time(machine: &MachineModel, ranks: usize, buf_bytes: f64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let n_nodes = machine.nodes_for(ranks);
    let on_node_peers = (machine.ranks_per_node.min(ranks) - 1) as f64;
    let off_node_peers = (ranks - 1) as f64 - on_node_peers;
    let intra_time = on_node_peers * (machine.msg_overhead + buf_bytes / machine.intra_bw);
    let inter_time = off_node_peers
        * (machine.msg_overhead + buf_bytes / machine.effective_inter_bw(n_nodes))
        + if off_node_peers > 0.0 {
            machine.inter_latency
        } else {
            0.0
        };
    intra_time + inter_time + machine.intra_latency
}

/// Neighbour all-to-all: only real neighbour buffers are exchanged (the
/// empty-tensor trick). Per-rank time is the serialized cost of its own
/// messages — neighbour counts are bounded (<= 26), so this stays flat in R.
pub fn neighbor_all_to_all_time(
    machine: &MachineModel,
    rank: usize,
    ranks: usize,
    profile: &RankProfile,
    bytes_per_shared_node: f64,
) -> f64 {
    if ranks <= 1 || profile.shared_per_neighbor.is_empty() {
        return 0.0;
    }
    let n_nodes = machine.nodes_for(ranks);
    let mut t = machine.intra_latency; // collective entry overhead
    for &(nbr, shared) in &profile.shared_per_neighbor {
        let bytes = shared as f64 * bytes_per_shared_node;
        t += machine.msg_overhead;
        t += if machine.same_node(rank, nbr) {
            bytes / machine.intra_bw
        } else {
            bytes / machine.effective_inter_bw(n_nodes)
        };
        if !machine.same_node(rank, nbr) {
            t += machine.inter_latency / profile.shared_per_neighbor.len() as f64;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_graph::{RankGraphStats, RankProfile};

    fn profile(neighbors: &[(usize, usize)]) -> RankProfile {
        RankProfile {
            stats: RankGraphStats {
                local_nodes: 0,
                halo_nodes: neighbors.iter().map(|&(_, s)| s).sum(),
                neighbors: neighbors.len(),
                directed_edges: 0,
            },
            shared_per_neighbor: neighbors.to_vec(),
        }
    }

    #[test]
    fn dense_a2a_grows_linearly_with_ranks() {
        let m = MachineModel::frontier();
        let t64 = dense_all_to_all_time(&m, 64, 64.0 * 1024.0);
        let t1024 = dense_all_to_all_time(&m, 1024, 64.0 * 1024.0);
        assert!(t1024 > 10.0 * t64, "t64={t64} t1024={t1024}");
    }

    #[test]
    fn neighbor_a2a_is_flat_in_rank_count() {
        let m = MachineModel::frontier();
        let p = profile(&[(100, 3600), (200, 3600), (300, 60), (400, 1)]);
        let t64 = neighbor_all_to_all_time(&m, 0, 64, &p, 256.0);
        let t2048 = neighbor_all_to_all_time(&m, 0, 2048, &p, 256.0);
        assert!(t2048 < 2.0 * t64, "t64={t64} t2048={t2048}");
    }

    #[test]
    fn neighbor_a2a_beats_dense_a2a_at_scale() {
        let m = MachineModel::frontier();
        let p = profile(&[(9, 3600); 11]);
        let bytes_per_node = 32.0 * 8.0;
        let dense = dense_all_to_all_time(&m, 2048, 3600.0 * bytes_per_node);
        let nbr = neighbor_all_to_all_time(&m, 0, 2048, &p, bytes_per_node);
        assert!(nbr < dense / 10.0, "dense={dense} nbr={nbr}");
    }

    #[test]
    fn all_reduce_time_increases_with_bytes_and_ranks() {
        let m = MachineModel::frontier();
        assert!(all_reduce_time(&m, 8, 1e6) < all_reduce_time(&m, 8, 1e8));
        assert!(all_reduce_time(&m, 8, 1e6) < all_reduce_time(&m, 2048, 1e6));
        assert_eq!(all_reduce_time(&m, 1, 1e6), 0.0);
    }
}
