//! Analytic FLOP / byte counts for one training iteration of the
//! encode-process-decode GNN, used as the compute term of the weak-scaling
//! model. A roofline-style additive model: `t = flops/rate + bytes/bw`.

use cgnn_core::GnnConfig;

use crate::machine::MachineModel;

/// Work performed by one rank in one training iteration.
#[derive(Debug, Clone, Copy)]
pub struct RankWork {
    pub flops: f64,
    pub bytes: f64,
}

/// FLOPs of one dense MLP forward application per row.
fn mlp_flops_per_row(inp: usize, hidden: usize, out: usize, n_hidden: usize) -> f64 {
    // 2 flops per MAC; n_hidden interior h->h linears plus in->h and h->out,
    // activations and layer norm are O(width) and folded into the constant.
    let macs = inp * hidden + n_hidden * hidden * hidden + hidden * out;
    2.2 * macs as f64
}

/// Bytes touched per row by an MLP (activations in/out + weight streaming
/// amortized across rows; weights are small enough to stay in cache, so the
/// activation traffic dominates).
fn mlp_bytes_per_row(inp: usize, hidden: usize, out: usize, n_hidden: usize) -> f64 {
    8.0 * (inp + out + (n_hidden + 1) * hidden) as f64
}

/// Per-iteration work for a rank holding `nodes` local nodes and `edges`
/// directed edges. `fwd+bwd` is costed as 3x the forward pass (the standard
/// accounting: backward does roughly two forward-equivalents).
pub fn iteration_work(config: &GnnConfig, nodes: f64, edges: f64) -> RankWork {
    let h = config.hidden;
    let nh = config.mlp_hidden;
    let mut flops = 0.0;
    let mut bytes = 0.0;

    // Encoders.
    flops += nodes * mlp_flops_per_row(config.node_in, h, h, nh);
    flops += edges * mlp_flops_per_row(config.edge_in, h, h, nh);
    bytes += nodes * mlp_bytes_per_row(config.node_in, h, h, nh);
    bytes += edges * mlp_bytes_per_row(config.edge_in, h, h, nh);

    // Message passing layers: edge MLP on 3h, node MLP on 2h, plus
    // gather/scatter traffic of 3 h-wide rows per edge.
    let per_layer_flops =
        edges * mlp_flops_per_row(3 * h, h, h, nh) + nodes * mlp_flops_per_row(2 * h, h, h, nh);
    let per_layer_bytes = edges * (mlp_bytes_per_row(3 * h, h, h, nh) + 8.0 * (3 * h) as f64)
        + nodes * mlp_bytes_per_row(2 * h, h, h, nh);
    flops += config.n_mp_layers as f64 * per_layer_flops;
    bytes += config.n_mp_layers as f64 * per_layer_bytes;

    // Decoder.
    flops += nodes * mlp_flops_per_row(h, h, config.node_out, nh);
    bytes += nodes * mlp_bytes_per_row(h, h, config.node_out, nh);

    // Forward + backward.
    RankWork {
        flops: 3.0 * flops,
        bytes: 3.0 * bytes,
    }
}

/// Compute time of one iteration on one rank (roofline additive).
pub fn compute_time(machine: &MachineModel, work: &RankWork) -> f64 {
    work.flops / machine.rank_flops + work.bytes / machine.rank_mem_bw + machine.iter_overhead
}

/// Scalar parameter count of a model config (for the gradient all-reduce
/// volume). Delegates to the real model builder so the cost model can never
/// drift from the implementation.
pub fn param_count(config: &GnnConfig) -> usize {
    let (_, model) = cgnn_core::ConsistentGnn::seeded(*config, 0);
    model.num_scalars()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_model_costs_more_than_small() {
        let nodes = 531_441.0;
        let edges = 6.0 * nodes;
        let small = iteration_work(&GnnConfig::small(), nodes, edges);
        let large = iteration_work(&GnnConfig::large(), nodes, edges);
        assert!(large.flops > 5.0 * small.flops);
        assert!(large.bytes > small.bytes);
    }

    #[test]
    fn compute_time_is_sub_second_at_paper_loadings() {
        // Sanity: one iteration of the large model at 512k nodes/rank should
        // land in the 10ms..1s band on a Frontier GCD (the paper's total
        // throughput plots imply iteration times of this order).
        let m = MachineModel::frontier();
        let w = iteration_work(&GnnConfig::large(), 531_441.0, 6.0 * 531_441.0);
        let t = compute_time(&m, &w);
        assert!(t > 0.01 && t < 1.0, "t = {t}");
    }

    #[test]
    fn param_counts_match_table1_implementation() {
        assert_eq!(param_count(&GnnConfig::small()), 4_003);
        assert_eq!(param_count(&GnnConfig::large()), 91_555);
    }
}
