//! # cgnn-perf
//!
//! The Frontier-scale performance model: since 2048 MI250X GCDs are not
//! available to this reproduction, the weak-scaling results of the paper
//! (Figs. 7-8) are regenerated from
//!
//! 1. **exact per-rank graph profiles** (closed-form, validated against the
//!    real builder — `cgnn-graph::stats`),
//! 2. an **alpha-beta machine model** of Frontier's published parameters
//!    ([`machine`], [`collective_model`]),
//! 3. **analytic GNN kernel costs** tied to the real model implementation
//!    ([`gnn_cost`]), and
//! 4. **host calibration** against real measured iterations of this
//!    repository's GNN ([`calibrate`]).
//!
//! The claims this reproduces are *shape* claims: who wins, by what factor,
//! and where the curves break — see EXPERIMENTS.md for the comparison.

pub mod calibrate;
pub mod collective_model;
pub mod gnn_cost;
pub mod machine;
pub mod weak_scaling;

pub use calibrate::{measure_single_rank, Calibration};
pub use collective_model::{
    all_gather_time, all_reduce_time, dense_all_to_all_time, neighbor_all_to_all_time,
    overlapped_neighbor_time,
};
pub use gnn_cost::{compute_time, iteration_work, param_count, RankWork};
pub use machine::MachineModel;
pub use weak_scaling::{
    cubic_layout, paper_sweep, relative_throughput, weak_scaling_series, Loading, ScalingPoint,
    ScalingSeries,
};
