//! Machine model parameters — Frontier (OLCF) by default, per the hardware
//! description in the paper's Sec. III-B and the Frontier system paper.

use serde::{Deserialize, Serialize};

/// Analytic machine model for one homogeneous GPU system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineModel {
    pub name: String,
    /// MPI ranks (GPU dies) per node — 8 GCDs on Frontier.
    pub ranks_per_node: usize,
    /// Sustained compute rate per rank for GNN-style kernels [FLOP/s].
    /// MI250X GCD peak is ~24 TFLOP/s FP32; message-passing workloads with
    /// gather/scatter sustain a modest fraction of that.
    pub rank_flops: f64,
    /// HBM bandwidth per rank [B/s] (MI250X: ~1.6 TB/s per GCD).
    pub rank_mem_bw: f64,
    /// Intra-node GPU-GPU bandwidth per direction [B/s] (Infinity Fabric).
    pub intra_bw: f64,
    /// Intra-node message latency \[s\].
    pub intra_latency: f64,
    /// NIC bandwidth per node [B/s] — 4 x 25 GB/s Slingshot NICs.
    pub node_nic_bw: f64,
    /// Inter-node message latency \[s\].
    pub inter_latency: f64,
    /// Per-message software/NIC overhead \[s\] (dominates dense all-to-all).
    pub msg_overhead: f64,
    /// Fixed per-iteration framework overhead \[s\] (kernel launches, Python
    /// dispatch in the original; scheduling here).
    pub iter_overhead: f64,
    /// Network contention growth coefficient: effective inter-node
    /// bandwidth degrades by `1 / (1 + c * log2(n_nodes))` as the job
    /// spans more of the fabric.
    pub contention: f64,
    /// Fraction of a halo exchange's transfer time (bandwidth + wire
    /// latency, not message-injection overhead) hidden behind independent
    /// compute by the overlapped (`Ovl-SR`) schedule, in `[0, 1]`. The
    /// node-MLP of the previous NMP layer is the compute being overlapped;
    /// 1.0 would mean the window always covers the transfer.
    pub overlap_fraction: f64,
}

impl MachineModel {
    /// Frontier-like parameters (HPE Cray EX, MI250X, Slingshot-11).
    pub fn frontier() -> Self {
        MachineModel {
            name: "frontier".to_string(),
            ranks_per_node: 8,
            rank_flops: 8.0e12,  // sustained FP32-equivalent for NMP kernels
            rank_mem_bw: 1.2e12, // sustained HBM
            intra_bw: 40.0e9,    // Infinity Fabric effective per pair
            intra_latency: 4.0e-6,
            node_nic_bw: 4.0 * 25.0e9,
            inter_latency: 12.0e-6,
            msg_overhead: 1.5e-6,
            iter_overhead: 3.0e-3,
            contention: 0.035,
            overlap_fraction: 0.7,
        }
    }

    /// Aurora-like parameters (HPE Cray EX, Intel PVC, Slingshot-11 with 8
    /// NICs/node, 12 GPU tiles per node) — the paper's conclusion proposes
    /// exactly this cross-machine comparison as future work; the consistent
    /// GNN's halo/arithmetic mix makes it a fabric-sensitive benchmark.
    pub fn aurora() -> Self {
        MachineModel {
            name: "aurora".to_string(),
            ranks_per_node: 12,
            rank_flops: 7.0e12,
            rank_mem_bw: 1.0e12,
            intra_bw: 30.0e9,
            intra_latency: 5.0e-6,
            node_nic_bw: 8.0 * 25.0e9,
            inter_latency: 12.0e-6,
            msg_overhead: 1.5e-6,
            iter_overhead: 3.0e-3,
            contention: 0.035,
            overlap_fraction: 0.7,
        }
    }

    /// NIC bandwidth share per rank when all ranks of a node send
    /// concurrently.
    pub fn nic_bw_per_rank(&self) -> f64 {
        self.node_nic_bw / self.ranks_per_node as f64
    }

    /// Effective inter-node bandwidth per rank for a job of `n_nodes`
    /// nodes, including the fabric contention factor.
    pub fn effective_inter_bw(&self, n_nodes: usize) -> f64 {
        let f = 1.0 + self.contention * (n_nodes.max(1) as f64).log2();
        self.nic_bw_per_rank() / f
    }

    /// Number of nodes a job of `ranks` ranks occupies.
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.ranks_per_node)
    }

    /// Whether two ranks land on the same node (block rank placement).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        a / self.ranks_per_node == b / self.ranks_per_node
    }

    /// Point-to-point message time between ranks `a` and `b`.
    pub fn p2p_time(&self, a: usize, b: usize, bytes: f64, n_nodes: usize) -> f64 {
        if self.same_node(a, b) {
            self.intra_latency + bytes / self.intra_bw
        } else {
            self.inter_latency + bytes / self.effective_inter_bw(n_nodes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_basics() {
        let m = MachineModel::frontier();
        assert_eq!(m.ranks_per_node, 8);
        assert_eq!(m.nodes_for(8), 1);
        assert_eq!(m.nodes_for(9), 2);
        assert_eq!(m.nodes_for(2048), 256);
        assert!(m.same_node(0, 7));
        assert!(!m.same_node(7, 8));
    }

    #[test]
    fn aurora_has_more_nic_headroom_per_rank() {
        // 8 NICs for 12 ranks vs 4 NICs for 8 ranks.
        let f = MachineModel::frontier();
        let a = MachineModel::aurora();
        assert!(a.nic_bw_per_rank() > f.nic_bw_per_rank());
        assert_eq!(a.nodes_for(24), 2);
    }

    #[test]
    fn contention_reduces_bandwidth_monotonically() {
        let m = MachineModel::frontier();
        let b1 = m.effective_inter_bw(1);
        let b256 = m.effective_inter_bw(256);
        assert!(b256 < b1);
        assert!(b256 > 0.5 * b1, "contention model too aggressive");
    }

    #[test]
    fn intra_node_messages_are_cheaper() {
        let m = MachineModel::frontier();
        let bytes = 1e6;
        assert!(m.p2p_time(0, 1, bytes, 256) < m.p2p_time(0, 9, bytes, 256));
    }
}
