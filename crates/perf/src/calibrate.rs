//! Host calibration: measure the *real* single-rank NMP training iteration
//! implemented in this repository, so the simulated Frontier numbers can be
//! cross-checked against measured arithmetic on the machine running the
//! benchmarks (the absolute scale differs; the per-node cost structure is
//! what carries over).

use std::sync::Arc;
use std::time::Instant;

use cgnn_comm::World;
use cgnn_core::{GnnConfig, HaloContext, RankData, Trainer};
use cgnn_graph::build_global_graph;
use cgnn_mesh::{BoxMesh, TaylorGreen};

/// Result of a calibration run.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    pub nodes: usize,
    pub edges: usize,
    pub iters: usize,
    pub seconds_per_iter: f64,
    /// Measured single-rank throughput [nodes/s].
    pub nodes_per_sec: f64,
}

/// Time `iters` real training iterations of `config` on an `e^3`-element
/// p-order box on one rank of this host.
pub fn measure_single_rank(config: GnnConfig, elems: usize, p: usize, iters: usize) -> Calibration {
    let mesh = BoxMesh::tgv_cube(elems, p);
    let graph = Arc::new(build_global_graph(&mesh));
    let nodes = graph.n_local();
    let edges = graph.n_edges();
    let field = TaylorGreen::new(0.01);
    let secs = World::run(1, |comm| {
        let ctx = HaloContext::single(comm.clone());
        let mut trainer = Trainer::new(config, 7, 1e-4, ctx);
        let data = RankData::tgv_autoencode(Arc::clone(&graph), &field, 0.0);
        // Warm-up iteration excluded from timing.
        trainer.step(&data);
        let start = Instant::now();
        for _ in 0..iters {
            trainer.step(&data);
        }
        start.elapsed().as_secs_f64()
    })
    .pop()
    .expect("one result");
    let seconds_per_iter = secs / iters as f64;
    Calibration {
        nodes,
        edges,
        iters,
        seconds_per_iter,
        nodes_per_sec: nodes as f64 / seconds_per_iter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_runs_and_reports_positive_throughput() {
        let c = measure_single_rank(GnnConfig::small(), 3, 1, 2);
        assert!(c.nodes_per_sec > 0.0);
        // Periodic 3^3-element p=1 box: (1*3)^3 = 27 unique nodes.
        assert_eq!(c.nodes, 27);
    }
}
